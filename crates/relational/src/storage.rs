//! Row storage: one in-memory heap per table plus its indexes.

use crate::error::SqlError;
use crate::index::{BTreeIndex, RowId};
use crate::schema::TableSchema;
use crate::value::{DataType, Value};

/// A stored table: schema, rows and indexes (the primary-key index is
/// created automatically).
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Vec<Value>>,
    indexes: Vec<BTreeIndex>,
}

impl Table {
    /// Creates an empty table; builds the primary-key index if a key is
    /// declared.
    pub fn new(schema: TableSchema) -> Result<Self, SqlError> {
        let mut t = Table { schema, rows: Vec::new(), indexes: Vec::new() };
        if !t.schema.primary_key.is_empty() {
            let cols = t.resolve_columns(&t.schema.primary_key.clone())?;
            t.indexes.push(BTreeIndex::new(
                format!("pk_{}", t.schema.name),
                cols,
                true,
            ));
        }
        Ok(t)
    }

    fn resolve_columns(&self, names: &[String]) -> Result<Vec<usize>, SqlError> {
        names
            .iter()
            .map(|n| {
                self.schema
                    .column_index(n)
                    .ok_or_else(|| SqlError::UnknownColumn(n.clone()))
            })
            .collect()
    }

    /// Inserts a row after validating arity, types and NOT NULL, updating
    /// all indexes. Returns the new row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, SqlError> {
        if row.len() != self.schema.arity() {
            return Err(SqlError::Constraint(format!(
                "table {} expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (col, v) in self.schema.columns.iter().zip(&row) {
            if v.is_null() {
                if col.not_null {
                    return Err(SqlError::Constraint(format!(
                        "column {}.{} is NOT NULL",
                        self.schema.name, col.name
                    )));
                }
                continue;
            }
            let ok = matches!(
                (col.data_type, v.data_type()),
                (DataType::Int, Some(DataType::Int))
                    | (DataType::Double, Some(DataType::Double))
                    | (DataType::Double, Some(DataType::Int))
                    | (DataType::Text, Some(DataType::Text))
                    | (DataType::Bool, Some(DataType::Bool))
            );
            if !ok {
                return Err(SqlError::Constraint(format!(
                    "type mismatch for {}.{}: expected {}, got {v}",
                    self.schema.name, col.name, col.data_type
                )));
            }
        }
        // Validate every unique index before mutating any, so a failed
        // insert leaves no phantom index entries.
        for idx in &self.indexes {
            if idx.would_violate(&row) {
                return Err(SqlError::Constraint(format!(
                    "unique index {} violated",
                    idx.name
                )));
            }
        }
        let rid = self.rows.len();
        for idx in &mut self.indexes {
            idx.insert(&row, rid)?;
        }
        self.rows.push(row);
        Ok(rid)
    }

    /// Adds a secondary index over `columns`, backfilling existing rows.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: &[String],
        unique: bool,
    ) -> Result<(), SqlError> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(SqlError::AlreadyExists(name));
        }
        let cols = self.resolve_columns(columns)?;
        let mut idx = BTreeIndex::new(name, cols, unique);
        for (rid, row) in self.rows.iter().enumerate() {
            idx.insert(row, rid)?;
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drops an index by name; true when it existed.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i.name != name || i.name.starts_with("pk_"));
        self.indexes.len() != before
    }

    /// The first index whose leading key column is `col`, if any. This is
    /// the question Heuristics 1 and 2 ask of the physical design.
    pub fn index_on(&self, col: &str) -> Option<&BTreeIndex> {
        let pos = self.schema.column_index(col)?;
        self.indexes.iter().find(|i| i.key_columns.first() == Some(&pos))
    }

    /// True when column `col` is covered by an index as its leading key.
    pub fn has_index_on(&self, col: &str) -> bool {
        self.index_on(col).is_some()
    }

    /// All indexes (primary first).
    pub fn indexes(&self) -> &[BTreeIndex] {
        &self.indexes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row access by id.
    pub fn row(&self, rid: RowId) -> Option<&[Value]> {
        self.rows.get(rid).map(Vec::as_slice)
    }

    /// Iterates all rows with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "drug",
                vec![
                    Column::not_null("id", DataType::Text),
                    Column::new("name", DataType::Text),
                    Column::new("mass", DataType::Double),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap()
    }

    #[test]
    fn insert_and_read() {
        let mut t = table();
        let rid = t
            .insert(vec![Value::text("d1"), Value::text("Aspirin"), Value::Double(180.2)])
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(rid).unwrap()[1], Value::text("Aspirin"));
    }

    #[test]
    fn primary_key_enforced() {
        let mut t = table();
        t.insert(vec![Value::text("d1"), Value::Null, Value::Null]).unwrap();
        let err = t.insert(vec![Value::text("d1"), Value::Null, Value::Null]);
        assert!(matches!(err, Err(SqlError::Constraint(_))));
        // Failed insert must not leave a phantom row.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table();
        let err = t.insert(vec![Value::Null, Value::Null, Value::Null]);
        assert!(matches!(err, Err(SqlError::Constraint(_))));
    }

    #[test]
    fn arity_enforced() {
        let mut t = table();
        assert!(t.insert(vec![Value::text("d1")]).is_err());
    }

    #[test]
    fn type_checked() {
        let mut t = table();
        let err = t.insert(vec![Value::Int(5), Value::Null, Value::Null]);
        assert!(matches!(err, Err(SqlError::Constraint(_))));
        // Int widens into a DOUBLE column.
        assert!(t
            .insert(vec![Value::text("d1"), Value::Null, Value::Int(42)])
            .is_ok());
    }

    #[test]
    fn secondary_index_backfills() {
        let mut t = table();
        t.insert(vec![Value::text("d1"), Value::text("Aspirin"), Value::Null]).unwrap();
        t.insert(vec![Value::text("d2"), Value::text("Ibuprofen"), Value::Null]).unwrap();
        t.create_index("idx_name", &["name".into()], false).unwrap();
        let idx = t.index_on("name").unwrap();
        assert_eq!(idx.lookup(&[Value::text("Aspirin")]), &[0]);
    }

    #[test]
    fn index_on_detects_pk_and_secondary() {
        let mut t = table();
        assert!(t.has_index_on("id")); // primary key
        assert!(!t.has_index_on("name"));
        t.create_index("idx_name", &["name".into()], false).unwrap();
        assert!(t.has_index_on("name"));
        assert!(!t.has_index_on("mass"));
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", &["name".into()], false).unwrap();
        assert!(matches!(
            t.create_index("i", &["mass".into()], false),
            Err(SqlError::AlreadyExists(_))
        ));
    }

    #[test]
    fn drop_index() {
        let mut t = table();
        t.create_index("i", &["name".into()], false).unwrap();
        assert!(t.drop_index("i"));
        assert!(!t.has_index_on("name"));
        assert!(!t.drop_index("i"));
    }
}
