//! Error types for the relational engine.

use std::fmt;

/// Errors raised by the SQL front-end, planner or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical/parse error.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column, with the context where it was referenced.
    UnknownColumn(String),
    /// Ambiguous unqualified column reference.
    AmbiguousColumn(String),
    /// Schema violation (duplicate key, NOT NULL, arity, type mismatch).
    Constraint(String),
    /// An object (table/index) already exists.
    AlreadyExists(String),
    /// Planner/executor internal error.
    Internal(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "SQL parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::AlreadyExists(o) => write!(f, "already exists: {o}"),
            SqlError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        assert!(SqlError::UnknownTable("t".into()).to_string().contains('t'));
        assert!(SqlError::AmbiguousColumn("c".into())
            .to_string()
            .contains("ambiguous"));
    }
}
