//! B-tree secondary indexes.
//!
//! An index maps a (possibly composite) key to the row ids holding it.
//! Point lookups and range scans are what the physical-design-aware
//! planner exploits; their costs are tracked by the executor so the
//! simulation can price indexed vs. non-indexed access differently.

use crate::error::SqlError;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A row identifier: position in the table's row vector.
pub type RowId = usize;

/// A B-tree index over one or more columns.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    /// Index name.
    pub name: String,
    /// Indexed column positions in the base table.
    pub key_columns: Vec<usize>,
    /// UNIQUE constraint.
    pub unique: bool,
    tree: BTreeMap<Vec<Value>, Vec<RowId>>,
}

impl BTreeIndex {
    /// Creates an empty index.
    pub fn new(name: impl Into<String>, key_columns: Vec<usize>, unique: bool) -> Self {
        BTreeIndex { name: name.into(), key_columns, unique, tree: BTreeMap::new() }
    }

    /// Extracts this index's key from a full table row.
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.key_columns.iter().map(|&i| row[i].clone()).collect()
    }

    /// Inserts a row. Fails on UNIQUE violation (NULL keys are exempt, as
    /// in standard SQL unique indexes).
    pub fn insert(&mut self, row: &[Value], rid: RowId) -> Result<(), SqlError> {
        let key = self.key_of(row);
        let has_null = key.iter().any(Value::is_null);
        let entry = self.tree.entry(key).or_default();
        if self.unique && !entry.is_empty() && !has_null {
            return Err(SqlError::Constraint(format!(
                "unique index {} violated",
                self.name
            )));
        }
        entry.push(rid);
        Ok(())
    }

    /// True when inserting `row` would violate this index's UNIQUE
    /// constraint. Lets the table validate all indexes before mutating any.
    pub fn would_violate(&self, row: &[Value]) -> bool {
        if !self.unique {
            return false;
        }
        let key = self.key_of(row);
        if key.iter().any(Value::is_null) {
            return false;
        }
        self.tree.get(&key).is_some_and(|rids| !rids.is_empty())
    }

    /// Point lookup: row ids whose key equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        self.tree.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Prefix lookup for composite indexes: row ids whose key starts with
    /// `prefix`.
    pub fn lookup_prefix(&self, prefix: &[Value]) -> Vec<RowId> {
        if prefix.len() == self.key_columns.len() {
            return self.lookup(prefix).to_vec();
        }
        let lo = prefix.to_vec();
        self.tree
            .range((Bound::Included(lo), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Range scan on a single-column index: keys in `[low, high]` with
    /// inclusivity flags. `None` bounds are open.
    pub fn range(
        &self,
        low: Option<(&Value, bool)>,
        high: Option<(&Value, bool)>,
    ) -> Vec<RowId> {
        let lo = match low {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(vec![v.clone()]),
            Some((v, false)) => Bound::Excluded(vec![v.clone()]),
        };
        let hi = match high {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(vec![v.clone()]),
            Some((v, false)) => Bound::Excluded(vec![v.clone()]),
        };
        self.tree
            .range((lo, hi))
            // NULL sorts first in the value total order but must never
            // satisfy a range predicate.
            .filter(|(k, _)| !k.iter().any(Value::is_null))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.tree.len()
    }

    /// Total number of indexed entries.
    pub fn entries(&self) -> usize {
        self.tree.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: &[Value]) -> Vec<Value> {
        v.to_vec()
    }

    #[test]
    fn point_lookup() {
        let mut idx = BTreeIndex::new("i", vec![0], false);
        idx.insert(&row(&[Value::text("a"), Value::Int(1)]), 0).unwrap();
        idx.insert(&row(&[Value::text("b"), Value::Int(2)]), 1).unwrap();
        idx.insert(&row(&[Value::text("a"), Value::Int(3)]), 2).unwrap();
        assert_eq!(idx.lookup(&[Value::text("a")]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::text("b")]), &[1]);
        assert!(idx.lookup(&[Value::text("zz")]).is_empty());
    }

    #[test]
    fn unique_violation() {
        let mut idx = BTreeIndex::new("u", vec![0], true);
        idx.insert(&row(&[Value::Int(1)]), 0).unwrap();
        assert!(idx.insert(&row(&[Value::Int(1)]), 1).is_err());
        assert!(idx.insert(&row(&[Value::Int(2)]), 1).is_ok());
    }

    #[test]
    fn unique_allows_multiple_nulls() {
        let mut idx = BTreeIndex::new("u", vec![0], true);
        idx.insert(&row(&[Value::Null]), 0).unwrap();
        assert!(idx.insert(&row(&[Value::Null]), 1).is_ok());
    }

    #[test]
    fn range_scan() {
        let mut idx = BTreeIndex::new("r", vec![0], false);
        for i in 0..10 {
            idx.insert(&row(&[Value::Int(i)]), i as usize).unwrap();
        }
        let rids = idx.range(Some((&Value::Int(3), true)), Some((&Value::Int(6), false)));
        assert_eq!(rids, vec![3, 4, 5]);
        let open = idx.range(Some((&Value::Int(8), false)), None);
        assert_eq!(open, vec![9]);
    }

    #[test]
    fn range_excludes_nulls() {
        let mut idx = BTreeIndex::new("r", vec![0], false);
        idx.insert(&row(&[Value::Null]), 0).unwrap();
        idx.insert(&row(&[Value::Int(5)]), 1).unwrap();
        // NULL < everything in the total order, but must not appear in
        // x <= 10 results.
        let rids = idx.range(None, Some((&Value::Int(10), true)));
        assert_eq!(rids, vec![1]);
    }

    #[test]
    fn composite_prefix_lookup() {
        let mut idx = BTreeIndex::new("c", vec![0, 1], false);
        idx.insert(&row(&[Value::text("a"), Value::Int(1)]), 0).unwrap();
        idx.insert(&row(&[Value::text("a"), Value::Int(2)]), 1).unwrap();
        idx.insert(&row(&[Value::text("b"), Value::Int(1)]), 2).unwrap();
        let rids = idx.lookup_prefix(&[Value::text("a")]);
        assert_eq!(rids, vec![0, 1]);
        let exact = idx.lookup_prefix(&[Value::text("a"), Value::Int(2)]);
        assert_eq!(exact, vec![1]);
    }

    #[test]
    fn stats() {
        let mut idx = BTreeIndex::new("s", vec![0], false);
        idx.insert(&row(&[Value::Int(1)]), 0).unwrap();
        idx.insert(&row(&[Value::Int(1)]), 1).unwrap();
        idx.insert(&row(&[Value::Int(2)]), 2).unwrap();
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entries(), 3);
    }
}
