//! SQL abstract syntax.

use crate::schema::TableSchema;
use crate::value::Value;
use std::fmt;

/// A possibly table-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias, when qualified.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn new(column: impl Into<String>) -> Self {
        ColumnRef { table: None, column: column.into().to_lowercase() }
    }

    /// A qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into().to_lowercase()),
            column: column.into().to_lowercase(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// SQL comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for SqlCmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SqlCmpOp::Eq => "=",
            SqlCmpOp::Ne => "<>",
            SqlCmpOp::Lt => "<",
            SqlCmpOp::Le => "<=",
            SqlCmpOp::Gt => ">",
            SqlCmpOp::Ge => ">=",
        })
    }
}

/// The right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column reference (making the predicate a join condition).
    Column(ColumnRef),
    /// A literal value.
    Literal(Value),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(c) => write!(f, "{c}"),
            Operand::Literal(v) => write!(f, "{v}"),
        }
    }
}

/// A conjunct of a `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col OP operand`.
    Compare {
        /// Left column.
        left: ColumnRef,
        /// Operator.
        op: SqlCmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `col [NOT] LIKE 'pattern'`.
    Like {
        /// Filtered column.
        col: ColumnRef,
        /// LIKE pattern with `%`/`_` wildcards.
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        /// Tested column.
        col: ColumnRef,
        /// IS NOT NULL.
        negated: bool,
    },
    /// `col IN (v1, v2, …)`.
    InList {
        /// Tested column.
        col: ColumnRef,
        /// Allowed values.
        values: Vec<Value>,
    },
}

impl Predicate {
    /// The columns this predicate mentions.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        match self {
            Predicate::Compare { left, right, .. } => match right {
                Operand::Column(r) => vec![left, r],
                Operand::Literal(_) => vec![left],
            },
            Predicate::Like { col, .. }
            | Predicate::IsNull { col, .. }
            | Predicate::InList { col, .. } => vec![col],
        }
    }

    /// True when this predicate is an equi-join between two columns.
    pub fn is_equi_join(&self) -> bool {
        matches!(
            self,
            Predicate::Compare { op: SqlCmpOp::Eq, right: Operand::Column(_), .. }
        )
    }

    /// True when this predicate constrains a single column with a literal
    /// (a *selection*, in the paper's terms an instantiation).
    pub fn is_selection(&self) -> bool {
        match self {
            Predicate::Compare { right, .. } => matches!(right, Operand::Literal(_)),
            Predicate::Like { .. } | Predicate::IsNull { .. } | Predicate::InList { .. } => true,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::Like { col, pattern, negated } => {
                write!(f, "{col} {}LIKE '{pattern}'", if *negated { "NOT " } else { "" })
            }
            Predicate::IsNull { col, negated } => {
                write!(f, "{col} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Predicate::InList { col, values } => {
                write!(f, "{col} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A column, optionally aliased with `AS`.
    Column(ColumnRef, Option<String>),
}

/// A table in the `FROM`/`JOIN` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// One `JOIN … ON a = b` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// Left side of the ON equality.
    pub left: ColumnRef,
    /// Right side of the ON equality.
    pub right: ColumnRef,
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Sorted column.
    pub col: ColumnRef,
    /// Ascending?
    pub asc: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// First `FROM` table.
    pub from: TableRef,
    /// `JOIN` clauses in syntactic order.
    pub joins: Vec<JoinClause>,
    /// Conjunctive `WHERE` predicates.
    pub predicates: Vec<Predicate>,
    /// `ORDER BY` keys.
    pub order_by: Vec<SortKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(TableSchema),
    /// `CREATE [UNIQUE] INDEX`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Target table.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// UNIQUE flag.
        unique: bool,
    },
    /// `INSERT INTO … VALUES …`.
    Insert {
        /// Target table.
        table: String,
        /// Row tuples.
        rows: Vec<Vec<Value>>,
    },
    /// `SELECT`.
    Select(SelectStmt),
    /// `EXPLAIN SELECT`.
    Explain(SelectStmt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::new("Name").to_string(), "name");
        assert_eq!(ColumnRef::qualified("T", "C").to_string(), "t.c");
    }

    #[test]
    fn predicate_classification() {
        let sel = Predicate::Compare {
            left: ColumnRef::new("a"),
            op: SqlCmpOp::Eq,
            right: Operand::Literal(Value::Int(1)),
        };
        assert!(sel.is_selection());
        assert!(!sel.is_equi_join());

        let join = Predicate::Compare {
            left: ColumnRef::qualified("t", "a"),
            op: SqlCmpOp::Eq,
            right: Operand::Column(ColumnRef::qualified("u", "b")),
        };
        assert!(join.is_equi_join());
        assert!(!join.is_selection());
        assert_eq!(join.columns().len(), 2);
    }

    #[test]
    fn predicate_display() {
        let p = Predicate::Like {
            col: ColumnRef::new("name"),
            pattern: "%sapiens%".into(),
            negated: false,
        };
        assert_eq!(p.to_string(), "name LIKE '%sapiens%'");
        let q = Predicate::InList {
            col: ColumnRef::new("id"),
            values: vec![Value::Int(1), Value::Int(2)],
        };
        assert_eq!(q.to_string(), "id IN (1, 2)");
    }
}
