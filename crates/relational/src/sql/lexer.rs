//! SQL lexer.

use crate::error::SqlError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlToken {
    /// Identifier or keyword (case preserved; compare case-insensitively).
    Word(String),
    /// `'single-quoted string'` with `''` escaping.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Operator/punctuation.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl SqlToken {
    /// Case-insensitive keyword test.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, SqlToken::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL statement.
pub fn tokenize(input: &str) -> Result<Vec<SqlToken>, SqlError> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(SqlError::Parse("unterminated string".into()));
                    }
                    let ch = input[i..].chars().next().expect("in bounds");
                    i += ch.len_utf8();
                    if ch == '\'' {
                        // '' is an escaped quote.
                        if i < b.len() && b[i] == b'\'' {
                            s.push('\'');
                            i += 1;
                        } else {
                            break;
                        }
                    } else {
                        s.push(ch);
                    }
                }
                out.push(SqlToken::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut float = false;
                while i < b.len() && ((b[i] as char).is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.' {
                        if float {
                            break;
                        }
                        float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if float {
                    out.push(SqlToken::Float(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad float {text:?}"))
                    })?));
                } else {
                    out.push(SqlToken::Int(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad integer {text:?}"))
                    })?));
                }
            }
            '-' if i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit() => {
                let start = i;
                i += 1;
                let mut float = false;
                while i < b.len() && ((b[i] as char).is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.' {
                        if float {
                            break;
                        }
                        float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if float {
                    out.push(SqlToken::Float(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad float {text:?}"))
                    })?));
                } else {
                    out.push(SqlToken::Int(text.parse().map_err(|_| {
                        SqlError::Parse(format!("bad integer {text:?}"))
                    })?));
                }
            }
            '(' | ')' | ',' | '*' | '.' | ';' => {
                out.push(SqlToken::Punct(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '.' => ".",
                    _ => ";",
                }));
                i += 1;
            }
            '=' => {
                out.push(SqlToken::Punct("="));
                i += 1;
            }
            '<' => {
                if input[i..].starts_with("<=") {
                    out.push(SqlToken::Punct("<="));
                    i += 2;
                } else if input[i..].starts_with("<>") {
                    out.push(SqlToken::Punct("<>"));
                    i += 2;
                } else {
                    out.push(SqlToken::Punct("<"));
                    i += 1;
                }
            }
            '>' => {
                if input[i..].starts_with(">=") {
                    out.push(SqlToken::Punct(">="));
                    i += 2;
                } else {
                    out.push(SqlToken::Punct(">"));
                    i += 1;
                }
            }
            '!' if input[i..].starts_with("!=") => {
                out.push(SqlToken::Punct("<>"));
                i += 2;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_')
                {
                    i += 1;
                }
                out.push(SqlToken::Word(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Parse(format!("unexpected character {other:?}")));
            }
        }
    }
    out.push(SqlToken::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_select() {
        let t = tokenize("SELECT a.x, b FROM t WHERE x >= 3 AND y = 'it''s'").unwrap();
        assert!(t[0].is_kw("select"));
        assert_eq!(t[1], SqlToken::Word("a".into()));
        assert_eq!(t[2], SqlToken::Punct("."));
        assert!(t.contains(&SqlToken::Punct(">=")));
        assert!(t.contains(&SqlToken::Str("it's".into())));
    }

    #[test]
    fn tokenize_numbers() {
        let t = tokenize("1 2.5 -3 -4.25").unwrap();
        assert_eq!(t[0], SqlToken::Int(1));
        assert_eq!(t[1], SqlToken::Float(2.5));
        assert_eq!(t[2], SqlToken::Int(-3));
        assert_eq!(t[3], SqlToken::Float(-4.25));
    }

    #[test]
    fn neq_normalized() {
        let t = tokenize("x != 1 AND y <> 2").unwrap();
        assert_eq!(t.iter().filter(|t| **t == SqlToken::Punct("<>")).count(), 2);
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT x -- the column\nFROM t").unwrap();
        assert_eq!(t.len(), 5); // SELECT x FROM t EOF
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }
}
