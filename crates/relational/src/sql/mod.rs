//! The SQL front-end: lexer, AST and parser for the supported subset.
//!
//! Supported statements:
//!
//! * `CREATE TABLE t (col TYPE [NOT NULL] [PRIMARY KEY], …,
//!   [PRIMARY KEY (a, b)], [FOREIGN KEY (a) REFERENCES t2 (b)])`
//! * `CREATE [UNIQUE] INDEX name ON t (col, …)`
//! * `INSERT INTO t VALUES (…), (…)`
//! * `SELECT [DISTINCT] cols | * FROM t [alias]
//!   [JOIN t2 [alias] ON a.x = b.y]* [WHERE pred [AND pred]*]
//!   [ORDER BY col [ASC|DESC], …] [LIMIT n]`
//! * `EXPLAIN SELECT …`

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{ColumnRef, Operand, Predicate, SelectStmt, SqlCmpOp, Statement};
pub use parser::parse;
