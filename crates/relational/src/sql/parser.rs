//! Recursive-descent SQL parser.

use crate::error::SqlError;
use crate::schema::{Column, TableSchema};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, SqlToken};
use crate::value::{DataType, Value};

/// Parses one SQL statement.
pub fn parse(input: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_punct(";");
    match p.peek() {
        SqlToken::Eof => Ok(stmt),
        other => Err(SqlError::Parse(format!("trailing tokens: {other:?}"))),
    }
}

struct Parser {
    tokens: Vec<SqlToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SqlToken {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> SqlToken {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), SqlToken::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), SqlError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            SqlToken::Word(w) => Ok(w.to_lowercase()),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("EXPLAIN") {
            self.expect_kw("SELECT")?;
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            self.expect_kw("INDEX")?;
            return self.create_index(unique);
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            return self.insert();
        }
        Err(SqlError::Parse(format!("unsupported statement starting with {:?}", self.peek())))
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        let mut schema = TableSchema::new(name, Vec::new());
        loop {
            if self.peek().is_kw("PRIMARY") {
                self.bump();
                self.expect_kw("KEY")?;
                self.expect_punct("(")?;
                let mut pk = Vec::new();
                loop {
                    pk.push(self.ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
                schema.primary_key = pk;
            } else if self.peek().is_kw("FOREIGN") {
                self.bump();
                self.expect_kw("KEY")?;
                self.expect_punct("(")?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.ident()?;
                self.expect_punct("(")?;
                let mut ref_cols = Vec::new();
                loop {
                    ref_cols.push(self.ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
                schema.foreign_keys.push(crate::schema::ForeignKey {
                    columns: cols,
                    ref_table,
                    ref_columns: ref_cols,
                });
            } else {
                let col_name = self.ident()?;
                let dt = match self.bump() {
                    SqlToken::Word(w) => match w.to_uppercase().as_str() {
                        "INT" | "INTEGER" | "BIGINT" => DataType::Int,
                        "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" => DataType::Double,
                        "TEXT" | "VARCHAR" | "CHAR" | "STRING" => DataType::Text,
                        "BOOL" | "BOOLEAN" => DataType::Bool,
                        other => {
                            return Err(SqlError::Parse(format!("unknown type {other}")))
                        }
                    },
                    other => {
                        return Err(SqlError::Parse(format!("expected type, found {other:?}")))
                    }
                };
                // Optional (n) length spec, ignored.
                if self.eat_punct("(") {
                    self.bump();
                    self.expect_punct(")")?;
                }
                let mut col = Column::new(col_name, dt);
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        col.not_null = true;
                    } else if self.peek().is_kw("PRIMARY") {
                        self.bump();
                        self.expect_kw("KEY")?;
                        col.not_null = true;
                        schema.primary_key = vec![col.name.clone()];
                    } else {
                        break;
                    }
                }
                columns.push(col);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        schema.columns = columns;
        Ok(Statement::CreateTable(schema))
    }

    fn create_index(&mut self, unique: bool) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_punct("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(Statement::CreateIndex { name, table, columns, unique })
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            rows.push(row);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal(&mut self) -> Result<Value, SqlError> {
        match self.bump() {
            SqlToken::Int(i) => Ok(Value::Int(i)),
            SqlToken::Float(f) => Ok(Value::Double(f)),
            SqlToken::Str(s) => Ok(Value::Text(s)),
            SqlToken::Word(w) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            SqlToken::Word(w) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            SqlToken::Word(w) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(SqlError::Parse(format!("expected literal, found {other:?}"))),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.ident()?;
        if self.eat_punct(".") {
            let col = self.ident()?;
            Ok(ColumnRef { table: Some(first), column: col })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        let distinct = self.eat_kw("DISTINCT");
        let mut projection = Vec::new();
        if self.eat_punct("*") {
            projection.push(SelectItem::Star);
        } else {
            loop {
                let col = self.column_ref()?;
                let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
                projection.push(SelectItem::Column(col, alias));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_kw("INNER");
            if !self.eat_kw("JOIN") {
                if inner {
                    return Err(SqlError::Parse("INNER must be followed by JOIN".into()));
                }
                break;
            }
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let left = self.column_ref()?;
            self.expect_punct("=")?;
            let right = self.column_ref()?;
            joins.push(JoinClause { table, left, right });
        }
        let mut predicates = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.column_ref()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(SortKey { col, asc });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                SqlToken::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(SqlError::Parse(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt { distinct, projection, from, joins, predicates, order_by, limit })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        // Optional alias: a bare word that is not a clause keyword.
        const CLAUSES: &[&str] = &[
            "JOIN", "INNER", "WHERE", "ORDER", "LIMIT", "ON", "AND", "AS",
        ];
        let alias = match self.peek() {
            SqlToken::Word(w) if !CLAUSES.iter().any(|c| w.eq_ignore_ascii_case(c)) => {
                let a = w.to_lowercase();
                self.bump();
                a
            }
            _ => {
                if self.eat_kw("AS") {
                    self.ident()?
                } else {
                    table.clone()
                }
            }
        };
        Ok(TableRef { table, alias })
    }

    fn predicate(&mut self) -> Result<Predicate, SqlError> {
        let left = self.column_ref()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Predicate::IsNull { col: left, negated });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("LIKE") {
            match self.bump() {
                SqlToken::Str(pattern) => {
                    return Ok(Predicate::Like { col: left, pattern, negated })
                }
                other => {
                    return Err(SqlError::Parse(format!("LIKE expects string, found {other:?}")))
                }
            }
        }
        if negated {
            return Err(SqlError::Parse("NOT must be followed by LIKE".into()));
        }
        if self.eat_kw("IN") {
            self.expect_punct("(")?;
            let mut values = Vec::new();
            loop {
                values.push(self.literal()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            return Ok(Predicate::InList { col: left, values });
        }
        let op = match self.bump() {
            SqlToken::Punct("=") => SqlCmpOp::Eq,
            SqlToken::Punct("<>") => SqlCmpOp::Ne,
            SqlToken::Punct("<") => SqlCmpOp::Lt,
            SqlToken::Punct("<=") => SqlCmpOp::Le,
            SqlToken::Punct(">") => SqlCmpOp::Gt,
            SqlToken::Punct(">=") => SqlCmpOp::Ge,
            other => return Err(SqlError::Parse(format!("expected operator, found {other:?}"))),
        };
        let right = match self.peek() {
            SqlToken::Word(w)
                if !w.eq_ignore_ascii_case("NULL")
                    && !w.eq_ignore_ascii_case("TRUE")
                    && !w.eq_ignore_ascii_case("FALSE") =>
            {
                Operand::Column(self.column_ref()?)
            }
            _ => Operand::Literal(self.literal()?),
        };
        Ok(Predicate::Compare { left, op, right })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let stmt = parse(
            "CREATE TABLE drug (id TEXT PRIMARY KEY, name VARCHAR(255) NOT NULL, mass DOUBLE)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(s) => {
                assert_eq!(s.name, "drug");
                assert_eq!(s.arity(), 3);
                assert_eq!(s.primary_key, vec!["id"]);
                assert!(s.columns[1].not_null);
                assert_eq!(s.columns[2].data_type, DataType::Double);
            }
            other => panic!("expected CreateTable, got {other:?}"),
        }
    }

    #[test]
    fn parse_composite_pk_and_fk() {
        let stmt = parse(
            "CREATE TABLE gd (gene TEXT, disease TEXT, PRIMARY KEY (gene, disease), \
             FOREIGN KEY (gene) REFERENCES gene (id))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(s) => {
                assert_eq!(s.primary_key.len(), 2);
                assert_eq!(s.foreign_keys.len(), 1);
                assert_eq!(s.foreign_keys[0].ref_table, "gene");
            }
            other => panic!("expected CreateTable, got {other:?}"),
        }
    }

    #[test]
    fn parse_create_index() {
        let stmt = parse("CREATE UNIQUE INDEX idx_name ON drug (name)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateIndex {
                name: "idx_name".into(),
                table: "drug".into(),
                columns: vec!["name".into()],
                unique: true
            }
        );
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', 3.5)").unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][2], Value::Null);
                assert_eq!(rows[1][2], Value::Double(3.5));
            }
            other => panic!("expected Insert, got {other:?}"),
        }
    }

    #[test]
    fn parse_select_with_joins() {
        let stmt = parse(
            "SELECT g.id, d.name FROM gene g \
             JOIN gene_disease gd ON g.id = gd.gene \
             JOIN disease d ON gd.disease = d.id \
             WHERE g.species = 'Homo sapiens' AND d.class <> 'x' \
             ORDER BY d.name DESC LIMIT 10",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.from.alias, "g");
                assert_eq!(s.joins.len(), 2);
                assert_eq!(s.predicates.len(), 2);
                assert_eq!(s.order_by.len(), 1);
                assert!(!s.order_by[0].asc);
                assert_eq!(s.limit, Some(10));
            }
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parse_like_and_in() {
        let stmt = parse(
            "SELECT * FROM t WHERE name LIKE '%sapiens%' AND id IN (1, 2, 3) AND x IS NOT NULL",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.predicates.len(), 3);
                assert!(matches!(s.predicates[0], Predicate::Like { .. }));
                assert!(matches!(s.predicates[1], Predicate::InList { ref values, .. } if values.len() == 3));
                assert!(
                    matches!(s.predicates[2], Predicate::IsNull { negated: true, .. })
                );
            }
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn parse_explain() {
        let stmt = parse("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(stmt, Statement::Explain(_)));
    }

    #[test]
    fn join_predicate_in_where() {
        let stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = b.w").unwrap();
        match stmt {
            Statement::Select(s) => assert!(s.predicates[0].is_equi_join()),
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn alias_forms() {
        let s1 = parse("SELECT * FROM gene g").unwrap();
        let s2 = parse("SELECT * FROM gene AS g").unwrap();
        let s3 = parse("SELECT * FROM gene").unwrap();
        for (stmt, alias) in [(s1, "g"), (s2, "g"), (s3, "gene")] {
            match stmt {
                Statement::Select(s) => assert_eq!(s.from.alias, alias),
                other => panic!("expected Select, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
    }

    #[test]
    fn semicolon_allowed() {
        assert!(parse("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn distinct_flag() {
        match parse("SELECT DISTINCT x FROM t").unwrap() {
            Statement::Select(s) => assert!(s.distinct),
            other => panic!("expected Select, got {other:?}"),
        }
    }
}
