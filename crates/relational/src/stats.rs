//! Table and column statistics.
//!
//! These drive both the optimizer's cardinality estimates and the paper's
//! physical-design policy: *"No index is created \[when\] there are values
//! that are present in more than 15 % of the records"* (§1). The
//! [`ColumnStats::duplication_ratio`] captures exactly that quantity.

use crate::storage::Table;
use crate::value::Value;
use std::collections::HashMap;

/// The paper's indexing threshold: an attribute is indexable only when no
/// single value occurs in more than 15 % of the records.
pub const INDEXABLE_DUPLICATION_THRESHOLD: f64 = 0.15;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub column: String,
    /// Total non-NULL values.
    pub count: usize,
    /// NULL count.
    pub nulls: usize,
    /// Number of distinct non-NULL values.
    pub distinct: usize,
    /// Frequency of the most common value, as a fraction of all rows
    /// (`0.0` for an empty column).
    pub duplication_ratio: f64,
}

impl ColumnStats {
    /// Estimated selectivity of an equality predicate on this column:
    /// `1 / NDV` under the uniformity assumption.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// Whether the paper's physical-design policy permits an index on this
    /// column (§1: no value in more than 15 % of records).
    pub fn is_indexable(&self) -> bool {
        self.duplication_ratio <= INDEXABLE_DUPLICATION_THRESHOLD
    }
}

/// Computes statistics for one column of a table.
pub fn column_stats(table: &Table, column: &str) -> Option<ColumnStats> {
    let pos = table.schema.column_index(column)?;
    let mut freq: HashMap<&Value, usize> = HashMap::new();
    let mut nulls = 0usize;
    for (_, row) in table.iter() {
        let v = &row[pos];
        if v.is_null() {
            nulls += 1;
        } else {
            *freq.entry(v).or_insert(0) += 1;
        }
    }
    let count: usize = freq.values().sum();
    let max_freq = freq.values().copied().max().unwrap_or(0);
    let total = count + nulls;
    Some(ColumnStats {
        column: column.to_lowercase(),
        count,
        nulls,
        distinct: freq.len(),
        duplication_ratio: if total == 0 {
            0.0
        } else {
            max_freq as f64 / total as f64
        },
    })
}

/// Statistics for a whole table, computed on demand.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics in schema order.
    pub columns: Vec<ColumnStats>,
}

/// Computes statistics for every column of a table.
pub fn table_stats(table: &Table) -> TableStats {
    let columns = table
        .schema
        .columns
        .iter()
        .map(|c| column_stats(table, &c.name).expect("schema column must exist"))
        .collect();
    TableStats { rows: table.len(), columns }
}

impl TableStats {
    /// Looks up a column's stats by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        let name = name.to_lowercase();
        self.columns.iter().find(|c| c.column == name)
    }
}

/// Applies the paper's index-creation policy to a table: returns the
/// columns that *should* carry an index — the primary key plus every
/// requested attribute whose duplication ratio is within the threshold.
pub fn indexable_columns<'a>(table: &Table, requested: &'a [String]) -> Vec<&'a String> {
    requested
        .iter()
        .filter(|col| {
            column_stats(table, col).is_some_and(|s| s.is_indexable())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn table_with(names: &[&str]) -> Table {
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("species", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        for (i, n) in names.iter().enumerate() {
            t.insert(vec![Value::Int(i as i64), Value::text(*n)]).unwrap();
        }
        t
    }

    #[test]
    fn stats_basic() {
        let t = table_with(&["a", "b", "a", "c"]);
        let s = column_stats(&t, "species").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.duplication_ratio, 0.5);
        assert_eq!(s.nulls, 0);
    }

    #[test]
    fn nulls_counted_separately() {
        let mut t = table_with(&["a"]);
        t.insert(vec![Value::Int(99), Value::Null]).unwrap();
        let s = column_stats(&t, "species").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.nulls, 1);
        // max_freq 1 over 2 total rows.
        assert_eq!(s.duplication_ratio, 0.5);
    }

    #[test]
    fn fifteen_percent_rule() {
        // 20 distinct values in 20 rows: every value at 5 % → indexable.
        let names: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let t = table_with(&refs);
        assert!(column_stats(&t, "species").unwrap().is_indexable());

        // One value in 4 of 20 rows (20 %) → not indexable. This mirrors
        // the paper's Affymetrix species attribute.
        let mut skewed: Vec<&str> = vec!["Homo sapiens"; 4];
        let uniq: Vec<String> = (0..16).map(|i| format!("v{i}")).collect();
        skewed.extend(uniq.iter().map(String::as_str));
        let t = table_with(&skewed);
        let s = column_stats(&t, "species").unwrap();
        assert!(s.duplication_ratio > INDEXABLE_DUPLICATION_THRESHOLD);
        assert!(!s.is_indexable());
    }

    #[test]
    fn indexable_columns_filters() {
        let mut skewed: Vec<&str> = vec!["x"; 10];
        skewed.extend(["a", "b"]);
        let t = table_with(&skewed);
        let requested = vec!["id".to_string(), "species".to_string()];
        let cols = indexable_columns(&t, &requested);
        assert_eq!(cols, vec![&"id".to_string()]);
    }

    #[test]
    fn eq_selectivity() {
        let t = table_with(&["a", "b", "a", "c"]);
        let s = column_stats(&t, "species").unwrap();
        assert!((s.eq_selectivity() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_stats_covers_all_columns() {
        let t = table_with(&["a", "b"]);
        let ts = table_stats(&t);
        assert_eq!(ts.rows, 2);
        assert_eq!(ts.columns.len(), 2);
        assert!(ts.column("ID").is_some());
        assert!(ts.column("nope").is_none());
    }

    #[test]
    fn empty_table_stats() {
        let t = table_with(&[]);
        let s = column_stats(&t, "species").unwrap();
        assert_eq!(s.count, 0);
        assert_eq!(s.duplication_ratio, 0.0);
        assert_eq!(s.eq_selectivity(), 0.0);
        assert!(s.is_indexable());
    }
}
