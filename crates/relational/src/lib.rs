//! # fedlake-relational
//!
//! An embedded, in-memory relational database engine — the stand-in for the
//! MySQL 5.7 containers the paper's data lake is built from.
//!
//! The engine provides everything the physical-design heuristics observe:
//!
//! * a catalog with primary keys, foreign keys and **secondary indexes**
//!   ([`schema`], [`Database::create_index`]);
//! * B-tree indexes supporting point and range lookups ([`index`]);
//! * per-column statistics including the *duplication ratio* that drives
//!   the paper's "no index when a value occurs in more than 15 % of the
//!   records" rule ([`stats`]);
//! * a SQL subset (`CREATE TABLE`, `CREATE INDEX`, `INSERT`, `SELECT` with
//!   joins, `WHERE`, `ORDER BY`, `LIMIT`) ([`sql`]);
//! * a rule/cost optimizer that picks access paths and join algorithms
//!   based on available indexes ([`optimizer`]);
//! * an iterator executor with **cost accounting** ([`exec`]) — the numbers
//!   the network/cost simulation converts into simulated time;
//! * `EXPLAIN` output ([`explain`]).
//!
//! ## Example
//!
//! ```
//! use fedlake_relational::Database;
//!
//! let mut db = Database::new("demo");
//! db.execute("CREATE TABLE drug (id TEXT PRIMARY KEY, name TEXT)").unwrap();
//! db.execute("INSERT INTO drug VALUES ('d1', 'Aspirin')").unwrap();
//! let rs = db.execute("SELECT name FROM drug WHERE id = 'd1'").unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! ```

pub mod db;
pub mod error;
pub mod exec;
pub mod explain;
pub mod index;
pub mod optimizer;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod value;

pub use db::{Database, ResultSet};
pub use error::SqlError;
pub use exec::CostStats;
pub use schema::{Column, ForeignKey, IndexDef, TableSchema};
pub use value::{DataType, Value};
