//! The query optimizer: name resolution, predicate classification, access
//! path selection and greedy left-deep join ordering.
//!
//! The optimizer is deliberately index-driven: when a selection or join key
//! is covered by an index it produces an index access path, otherwise a
//! sequential scan. This is the behaviour the paper's heuristics rely on —
//! a physical-design-aware federated plan only wins if the underlying RDBMS
//! actually exploits its indexes.

use crate::error::SqlError;
use crate::plan::{AccessPath, JoinAlgo, PhysicalPlan, ScanNode};
use crate::sql::ast::{
    ColumnRef, JoinClause, Operand, Predicate, SelectItem, SelectStmt, SqlCmpOp,
};
use crate::stats::column_stats;
use crate::storage::Table;
use std::collections::HashMap;

/// Default selectivity guesses for non-equality predicates.
const RANGE_SELECTIVITY: f64 = 0.33;
const LIKE_SELECTIVITY: f64 = 0.25;
const NULL_SELECTIVITY: f64 = 0.05;

/// The catalog view the optimizer needs.
pub trait CatalogView {
    /// Resolves a table by name.
    fn table(&self, name: &str) -> Option<&Table>;
}

impl CatalogView for HashMap<String, Table> {
    fn table(&self, name: &str) -> Option<&Table> {
        self.get(name)
    }
}

/// An equi-join edge between two aliases.
#[derive(Debug, Clone)]
struct JoinEdge {
    left: ColumnRef,
    right: ColumnRef,
}

/// Plans a `SELECT` statement into a physical plan.
pub fn plan_select<C: CatalogView>(stmt: &SelectStmt, catalog: &C) -> Result<PhysicalPlan, SqlError> {
    // 1. Resolve aliases.
    let mut aliases: Vec<(String, String)> = Vec::new(); // (alias, table)
    let mut register = |alias: &str, table: &str| -> Result<(), SqlError> {
        if catalog.table(table).is_none() {
            return Err(SqlError::UnknownTable(table.to_string()));
        }
        aliases.push((alias.to_string(), table.to_string()));
        Ok(())
    };
    register(&stmt.from.alias, &stmt.from.table)?;
    for j in &stmt.joins {
        register(&j.table.alias, &j.table.table)?;
    }
    let alias_table: HashMap<&str, &str> = aliases
        .iter()
        .map(|(a, t)| (a.as_str(), t.as_str()))
        .collect();

    // 2. Qualify every column reference.
    let qualify = |c: &ColumnRef| -> Result<ColumnRef, SqlError> {
        if let Some(t) = &c.table {
            let table = alias_table
                .get(t.as_str())
                .ok_or_else(|| SqlError::UnknownTable(t.clone()))?;
            let tbl = catalog.table(table).expect("validated above");
            if tbl.schema.column_index(&c.column).is_none() {
                return Err(SqlError::UnknownColumn(format!("{t}.{}", c.column)));
            }
            return Ok(c.clone());
        }
        let mut owner: Option<&str> = None;
        for (alias, table) in &aliases {
            let tbl = catalog.table(table).expect("validated above");
            if tbl.schema.column_index(&c.column).is_some() {
                if owner.is_some() {
                    return Err(SqlError::AmbiguousColumn(c.column.clone()));
                }
                owner = Some(alias);
            }
        }
        match owner {
            Some(alias) => Ok(ColumnRef::qualified(alias, &c.column)),
            None => Err(SqlError::UnknownColumn(c.column.clone())),
        }
    };

    // 3. Classify predicates: per-alias selections vs. join edges.
    let mut selections: HashMap<String, Vec<Predicate>> = HashMap::new();
    let mut edges: Vec<JoinEdge> = Vec::new();
    let push_pred = |p: Predicate,
                         selections: &mut HashMap<String, Vec<Predicate>>,
                         edges: &mut Vec<JoinEdge>|
     -> Result<(), SqlError> {
        match p {
            Predicate::Compare { left, op, right } => {
                let left = qualify(&left)?;
                match right {
                    Operand::Column(r) => {
                        let r = qualify(&r)?;
                        if op == SqlCmpOp::Eq {
                            edges.push(JoinEdge { left, right: r });
                        } else {
                            return Err(SqlError::Internal(
                                "non-equality join predicates are not supported".into(),
                            ));
                        }
                    }
                    Operand::Literal(v) => {
                        let alias = left.table.clone().expect("qualified");
                        selections.entry(alias).or_default().push(Predicate::Compare {
                            left,
                            op,
                            right: Operand::Literal(v),
                        });
                    }
                }
            }
            Predicate::Like { col, pattern, negated } => {
                let col = qualify(&col)?;
                let alias = col.table.clone().expect("qualified");
                selections
                    .entry(alias)
                    .or_default()
                    .push(Predicate::Like { col, pattern, negated });
            }
            Predicate::IsNull { col, negated } => {
                let col = qualify(&col)?;
                let alias = col.table.clone().expect("qualified");
                selections
                    .entry(alias)
                    .or_default()
                    .push(Predicate::IsNull { col, negated });
            }
            Predicate::InList { col, values } => {
                let col = qualify(&col)?;
                let alias = col.table.clone().expect("qualified");
                selections
                    .entry(alias)
                    .or_default()
                    .push(Predicate::InList { col, values });
            }
        }
        Ok(())
    };
    for j in &stmt.joins {
        let jc: JoinClause = j.clone();
        push_pred(
            Predicate::Compare {
                left: jc.left,
                op: SqlCmpOp::Eq,
                right: Operand::Column(jc.right),
            },
            &mut selections,
            &mut edges,
        )?;
    }
    for p in &stmt.predicates {
        push_pred(p.clone(), &mut selections, &mut edges)?;
    }

    // 4. Estimate filtered cardinality per alias and build scan nodes.
    let mut scans: HashMap<String, ScanNode> = HashMap::new();
    for (alias, table_name) in &aliases {
        let table = catalog.table(table_name).expect("validated above");
        let preds = selections.remove(alias).unwrap_or_default();
        scans.insert(alias.clone(), build_scan(table, alias, table_name, preds));
    }

    // 5. Greedy left-deep join ordering: start at the smallest scan,
    //    repeatedly attach the connected table with the smallest estimate.
    let mut remaining: Vec<String> = aliases.iter().map(|(a, _)| a.clone()).collect();
    remaining.sort_by(|a, b| {
        scans[a]
            .estimated_rows
            .total_cmp(&scans[b].estimated_rows)
            .then_with(|| a.cmp(b))
    });
    let first = remaining.remove(0);
    let mut joined: Vec<String> = vec![first.clone()];
    let mut plan = PhysicalPlan::Scan(scans[&first].clone());
    let mut used_edges: Vec<bool> = vec![false; edges.len()];

    while !remaining.is_empty() {
        // Find connectable aliases.
        let mut candidate: Option<(usize, usize, f64)> = None; // (remaining idx, edge idx, est)
        for (ri, alias) in remaining.iter().enumerate() {
            for (ei, edge) in edges.iter().enumerate() {
                if used_edges[ei] {
                    continue;
                }
                let la = edge.left.table.as_deref().expect("qualified");
                let ra = edge.right.table.as_deref().expect("qualified");
                let connects = (joined.iter().any(|j| j == la) && ra == alias)
                    || (joined.iter().any(|j| j == ra) && la == alias);
                if connects {
                    let est = scans[alias].estimated_rows;
                    if candidate.is_none_or(|(_, _, best)| est < best) {
                        candidate = Some((ri, ei, est));
                    }
                }
            }
        }
        match candidate {
            Some((ri, ei, _)) => {
                let alias = remaining.remove(ri);
                used_edges[ei] = true;
                let edge = &edges[ei];
                // Orient the edge: left side must belong to the joined set.
                let (lk, rk) = if edge.right.table.as_deref() == Some(alias.as_str()) {
                    (edge.left.clone(), edge.right.clone())
                } else {
                    (edge.right.clone(), edge.left.clone())
                };
                let right_scan = scans[&alias].clone();
                let table = catalog
                    .table(alias_table[alias.as_str()])
                    .expect("validated above");
                // Index nested loop when the inner join column is indexed
                // and the inner scan isn't already narrowed by an index.
                let algo = if table.has_index_on(&rk.column) {
                    JoinAlgo::IndexNestedLoop
                } else {
                    JoinAlgo::Hash
                };
                plan = PhysicalPlan::Join {
                    left: Box::new(plan),
                    right: right_scan,
                    algo,
                    left_key: Some(lk),
                    right_key: Some(rk),
                };
                joined.push(alias);
            }
            None => {
                // Disconnected: cross join the smallest remaining table.
                let alias = remaining.remove(0);
                plan = PhysicalPlan::Join {
                    left: Box::new(plan),
                    right: scans[&alias].clone(),
                    algo: JoinAlgo::Cross,
                    left_key: None,
                    right_key: None,
                };
                joined.push(alias);
            }
        }
    }

    // Any join edges not consumed by ordering become residual filters.
    let residual: Vec<Predicate> = edges
        .iter()
        .zip(&used_edges)
        .filter(|(_, used)| !**used)
        .map(|(e, _)| Predicate::Compare {
            left: e.left.clone(),
            op: SqlCmpOp::Eq,
            right: Operand::Column(e.right.clone()),
        })
        .collect();
    if !residual.is_empty() {
        plan = PhysicalPlan::Filter { input: Box::new(plan), predicates: residual };
    }

    // 6. Modifiers: sort → project → distinct → limit.
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|k| {
                Ok(crate::sql::ast::SortKey { col: qualify(&k.col)?, asc: k.asc })
            })
            .collect::<Result<Vec<_>, SqlError>>()?;
        plan = PhysicalPlan::Sort { input: Box::new(plan), keys };
    }

    let mut columns = Vec::new();
    let mut names = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Star => {
                for (alias, table_name) in &aliases {
                    let table = catalog.table(table_name).expect("validated above");
                    for col in &table.schema.columns {
                        columns.push(ColumnRef::qualified(alias, &col.name));
                        names.push(col.name.clone());
                    }
                }
            }
            SelectItem::Column(c, as_name) => {
                let q = qualify(c)?;
                names.push(as_name.clone().unwrap_or_else(|| q.column.clone()));
                columns.push(q);
            }
        }
    }
    plan = PhysicalPlan::Project { input: Box::new(plan), columns, names };

    if stmt.distinct {
        plan = PhysicalPlan::Distinct(Box::new(plan));
    }
    if let Some(n) = stmt.limit {
        plan = PhysicalPlan::Limit { input: Box::new(plan), n };
    }
    Ok(plan)
}

/// True when a literal can be compared with values of a column type under
/// SQL semantics. Index paths must not be chosen for incompatible pairs:
/// the B-tree's total order ranks types (e.g. all text above all numbers),
/// so a cross-type range scan would return rows that `sql_cmp` treats as
/// UNKNOWN.
fn literal_compatible(table: &Table, column: &str, v: &crate::value::Value) -> bool {
    use crate::value::DataType;
    let Some(col) = table.schema.column(column) else { return false };
    matches!(
        (col.data_type, v.data_type()),
        (DataType::Int | DataType::Double, Some(DataType::Int | DataType::Double))
            | (DataType::Text, Some(DataType::Text))
            | (DataType::Bool, Some(DataType::Bool))
    )
}

/// Builds a scan node: chooses the access path among the alias's selection
/// predicates and estimates the result cardinality.
fn build_scan(table: &Table, alias: &str, table_name: &str, preds: Vec<Predicate>) -> ScanNode {
    let mut best: Option<(usize, AccessPath, f64)> = None; // (pred idx, path, selectivity)
    for (i, p) in preds.iter().enumerate() {
        let (col, path, sel) = match p {
            Predicate::Compare { left, op: SqlCmpOp::Eq, right: Operand::Literal(v) } => {
                if !literal_compatible(table, &left.column, v) {
                    continue;
                }
                let Some(idx) = table.index_on(&left.column) else { continue };
                let sel = column_stats(table, &left.column)
                    .map(|s| s.eq_selectivity())
                    .unwrap_or(0.1);
                (
                    left,
                    AccessPath::IndexEq { index: idx.name.clone(), key: v.clone() },
                    sel,
                )
            }
            Predicate::Compare { left, op, right: Operand::Literal(v) }
                if matches!(op, SqlCmpOp::Lt | SqlCmpOp::Le | SqlCmpOp::Gt | SqlCmpOp::Ge) =>
            {
                if !literal_compatible(table, &left.column, v) {
                    continue;
                }
                let Some(idx) = table.index_on(&left.column) else { continue };
                let (low, high) = match op {
                    SqlCmpOp::Gt => (Some((v.clone(), false)), None),
                    SqlCmpOp::Ge => (Some((v.clone(), true)), None),
                    SqlCmpOp::Lt => (None, Some((v.clone(), false))),
                    _ => (None, Some((v.clone(), true))),
                };
                (
                    left,
                    AccessPath::IndexRange { index: idx.name.clone(), low, high },
                    RANGE_SELECTIVITY,
                )
            }
            Predicate::InList { col, values } => {
                if !values.iter().all(|v| literal_compatible(table, &col.column, v)) {
                    continue;
                }
                let Some(idx) = table.index_on(&col.column) else { continue };
                let sel = column_stats(table, &col.column)
                    .map(|s| s.eq_selectivity() * values.len() as f64)
                    .unwrap_or(0.2);
                (
                    col,
                    AccessPath::IndexInList {
                        index: idx.name.clone(),
                        keys: values.clone(),
                    },
                    sel.min(1.0),
                )
            }
            _ => continue,
        };
        let _ = col;
        if best.as_ref().is_none_or(|(_, _, s)| sel < *s) {
            best = Some((i, path, sel));
        }
    }

    let mut residual = preds;
    let (path, _path_sel) = match best {
        Some((i, path, sel)) => {
            residual.remove(i);
            (path, sel)
        }
        None => (AccessPath::SeqScan, 1.0),
    };

    // Cardinality estimate: rows × path selectivity × residual
    // selectivities.
    let mut est = table.len() as f64;
    if let Some((_, _, sel)) = &best_selectivity(&path, table) {
        est *= sel;
    }
    for p in &residual {
        est *= predicate_selectivity(p, table);
    }
    ScanNode {
        table: table_name.to_string(),
        alias: alias.to_string(),
        path,
        residual,
        estimated_rows: est.max(1.0),
    }
}

fn best_selectivity<'a>(
    path: &'a AccessPath,
    table: &Table,
) -> Option<(&'a str, &'a AccessPath, f64)> {
    match path {
        AccessPath::SeqScan => None,
        AccessPath::IndexEq { index, .. } => {
            let sel = index_selectivity(table, index, 1);
            Some((index.as_str(), path, sel))
        }
        AccessPath::IndexRange { index, .. } => Some((index.as_str(), path, RANGE_SELECTIVITY)),
        AccessPath::IndexInList { index, keys } => {
            let sel = index_selectivity(table, index, keys.len());
            Some((index.as_str(), path, sel))
        }
    }
}

fn index_selectivity(table: &Table, index_name: &str, keys: usize) -> f64 {
    table
        .indexes()
        .iter()
        .find(|i| i.name == index_name)
        .map(|i| {
            if i.distinct_keys() == 0 {
                0.0
            } else {
                (keys as f64 / i.distinct_keys() as f64).min(1.0)
            }
        })
        .unwrap_or(0.1)
}

/// Heuristic selectivity of a residual predicate.
pub fn predicate_selectivity(p: &Predicate, table: &Table) -> f64 {
    match p {
        Predicate::Compare { left, op, right: Operand::Literal(_) } => match op {
            SqlCmpOp::Eq => column_stats(table, &left.column)
                .map(|s| s.eq_selectivity())
                .unwrap_or(0.1),
            SqlCmpOp::Ne => 0.9,
            _ => RANGE_SELECTIVITY,
        },
        Predicate::Compare { .. } => 0.1, // join-ish residual
        Predicate::Like { negated, .. } => {
            if *negated {
                1.0 - LIKE_SELECTIVITY
            } else {
                LIKE_SELECTIVITY
            }
        }
        Predicate::IsNull { negated, .. } => {
            if *negated {
                1.0 - NULL_SELECTIVITY
            } else {
                NULL_SELECTIVITY
            }
        }
        Predicate::InList { values, col } => {
            let per = column_stats(table, &col.column)
                .map(|s| s.eq_selectivity())
                .unwrap_or(0.1);
            (per * values.len() as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::sql::parser::parse;
    use crate::sql::Statement;
    use crate::value::{DataType, Value};

    fn catalog() -> HashMap<String, Table> {
        let mut m = HashMap::new();
        let mut gene = Table::new(
            TableSchema::new(
                "gene",
                vec![
                    Column::not_null("id", DataType::Text),
                    Column::new("species", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        for i in 0..20 {
            gene.insert(vec![
                Value::text(format!("g{i}")),
                Value::text(if i % 2 == 0 { "Homo sapiens" } else { "Mus musculus" }),
            ])
            .unwrap();
        }
        let mut gd = Table::new(
            TableSchema::new(
                "gene_disease",
                vec![
                    Column::not_null("gene", DataType::Text),
                    Column::not_null("disease", DataType::Text),
                ],
            )
            .with_primary_key(&["gene", "disease"]),
        )
        .unwrap();
        for i in 0..20 {
            gd.insert(vec![Value::text(format!("g{i}")), Value::text(format!("d{}", i % 5))])
                .unwrap();
        }
        m.insert("gene".to_string(), gene);
        m.insert("gene_disease".to_string(), gd);
        m
    }

    fn select(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn pk_equality_uses_index() {
        let c = catalog();
        let plan = plan_select(&select("SELECT * FROM gene WHERE id = 'g3'"), &c).unwrap();
        assert_eq!(plan.indexed_scan_count(), 1);
    }

    #[test]
    fn unindexed_filter_is_seq_scan() {
        let c = catalog();
        let plan =
            plan_select(&select("SELECT * FROM gene WHERE species = 'Homo sapiens'"), &c)
                .unwrap();
        assert_eq!(plan.indexed_scan_count(), 0);
        assert_eq!(plan.scan_count(), 1);
    }

    #[test]
    fn join_on_indexed_key_uses_inlj() {
        let c = catalog();
        let plan = plan_select(
            &select("SELECT * FROM gene_disease gd JOIN gene g ON gd.gene = g.id"),
            &c,
        )
        .unwrap();
        fn find_join(p: &PhysicalPlan) -> Option<JoinAlgo> {
            match p {
                PhysicalPlan::Join { algo, .. } => Some(*algo),
                PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::Project { input, .. }
                | PhysicalPlan::Sort { input, .. }
                | PhysicalPlan::Limit { input, .. } => find_join(input),
                PhysicalPlan::Distinct(input) => find_join(input),
                PhysicalPlan::Scan(_) => None,
            }
        }
        // One side has an index on the join column (gene.id is PK or
        // gene_disease.gene is PK-prefix), so the optimizer picks INLJ.
        assert_eq!(find_join(&plan), Some(JoinAlgo::IndexNestedLoop));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let mut c = catalog();
        // Add a `species` column to gene_disease to force ambiguity.
        let mut t = Table::new(TableSchema::new(
            "gene_disease2",
            vec![
                Column::new("gene", DataType::Text),
                Column::new("species", DataType::Text),
            ],
        ))
        .unwrap();
        t.insert(vec![Value::text("g1"), Value::text("x")]).unwrap();
        c.insert("gene_disease2".to_string(), t);
        let err = plan_select(
            &select(
                "SELECT species FROM gene g JOIN gene_disease2 h ON g.id = h.gene",
            ),
            &c,
        );
        assert!(matches!(err, Err(SqlError::AmbiguousColumn(_))));
    }

    #[test]
    fn unknown_table_and_column() {
        let c = catalog();
        assert!(matches!(
            plan_select(&select("SELECT * FROM nope"), &c),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(matches!(
            plan_select(&select("SELECT nope FROM gene"), &c),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn cross_type_literal_never_uses_index_path() {
        // Regression: `a > 0` on an indexed TEXT column must not become an
        // index range scan — the B-tree total order would include every
        // text value, while SQL calls the comparison UNKNOWN.
        let mut c = HashMap::new();
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("a", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        t.insert(vec![Value::Int(0), Value::text("0")]).unwrap();
        t.create_index("idx_a", &["a".to_string()], false).unwrap();
        c.insert("t".to_string(), t);
        let plan = plan_select(&select("SELECT id FROM t WHERE a > 0"), &c).unwrap();
        assert_eq!(plan.indexed_scan_count(), 0);
        // And the residual predicate filters the row out.
        let (rel, _) = crate::exec::execute(&plan, &c).unwrap();
        assert!(rel.rows.is_empty());
    }

    #[test]
    fn estimate_shrinks_with_filters() {
        let c = catalog();
        let all = plan_select(&select("SELECT * FROM gene"), &c).unwrap();
        let filtered =
            plan_select(&select("SELECT * FROM gene WHERE id = 'g3'"), &c).unwrap();
        fn est(p: &PhysicalPlan) -> f64 {
            match p {
                PhysicalPlan::Scan(s) => s.estimated_rows,
                PhysicalPlan::Join { right, .. } => right.estimated_rows,
                PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::Project { input, .. }
                | PhysicalPlan::Sort { input, .. }
                | PhysicalPlan::Limit { input, .. } => est(input),
                PhysicalPlan::Distinct(input) => est(input),
            }
        }
        assert!(est(&filtered) < est(&all));
    }
}
