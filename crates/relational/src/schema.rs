//! Table schemas, keys and index definitions.

use crate::value::DataType;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercase).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
}

impl Column {
    /// Creates a nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column { name: name.into().to_lowercase(), data_type, not_null: false }
    }

    /// Creates a NOT NULL column.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Column { name: name.into().to_lowercase(), data_type, not_null: true }
    }
}

/// A foreign-key constraint: `columns` of this table reference
/// `ref_columns` of `ref_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing columns.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns.
    pub ref_columns: Vec<String>,
}

/// A secondary-index definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Indexed columns, in key order.
    pub columns: Vec<String>,
    /// UNIQUE constraint.
    pub unique: bool,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lowercase).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Primary-key columns (always implicitly indexed).
    pub primary_key: Vec<String>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Creates a schema with no keys.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into().to_lowercase(),
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Builder: sets the primary key.
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|c| c.to_lowercase()).collect();
        self
    }

    /// Builder: adds a foreign key.
    pub fn with_foreign_key(mut self, cols: &[&str], ref_table: &str, ref_cols: &[&str]) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: cols.iter().map(|c| c.to_lowercase()).collect(),
            ref_table: ref_table.to_lowercase(),
            ref_columns: ref_cols.iter().map(|c| c.to_lowercase()).collect(),
        });
        self
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let name = name.to_lowercase();
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True when `col` is the (single-column) primary key.
    pub fn is_primary_key(&self, col: &str) -> bool {
        self.primary_key.len() == 1 && self.primary_key[0].eq_ignore_ascii_case(col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "Drug",
            vec![
                Column::not_null("ID", DataType::Text),
                Column::new("name", DataType::Text),
                Column::new("mass", DataType::Double),
            ],
        )
        .with_primary_key(&["ID"])
        .with_foreign_key(&["name"], "other", &["id"])
    }

    #[test]
    fn names_are_lowercased() {
        let s = schema();
        assert_eq!(s.name, "drug");
        assert_eq!(s.columns[0].name, "id");
        assert_eq!(s.primary_key, vec!["id"]);
        assert_eq!(s.foreign_keys[0].ref_table, "other");
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("NAME"), Some(1));
        assert_eq!(s.column("Mass").unwrap().data_type, DataType::Double);
        assert!(s.column_index("missing").is_none());
    }

    #[test]
    fn primary_key_detection() {
        let s = schema();
        assert!(s.is_primary_key("id"));
        assert!(s.is_primary_key("ID"));
        assert!(!s.is_primary_key("name"));
    }

    #[test]
    fn arity() {
        assert_eq!(schema().arity(), 3);
    }
}
