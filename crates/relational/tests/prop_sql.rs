//! Randomized tests for the relational engine: whatever access paths and
//! join algorithms the optimizer picks, the answers must equal a naive
//! reference evaluation, and indexes must never change results.
//! Deterministically seeded via the in-repo PRNG.

use fedlake_prng::Prng;
use fedlake_relational::sql::ast::{Operand, Predicate, SqlCmpOp, Statement};
use fedlake_relational::sql::parse;
use fedlake_relational::{Column, DataType, Database, TableSchema, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// A small value universe so predicates hit often.
fn arb_value(rng: &mut Prng) -> Value {
    match rng.gen_range(0..7) {
        0..=2 => Value::Int(rng.gen_range(0i64..20)),
        3 | 4 => Value::text(format!("v{}", rng.gen_range(0u8..8))),
        5 => Value::Null,
        _ => Value::Double(rng.gen_range(0u8..10) as f64 / 2.0),
    }
}

fn arb_non_null(rng: &mut Prng) -> Value {
    loop {
        let v = arb_value(rng);
        if !v.is_null() {
            return v;
        }
    }
}

fn arb_rows(rng: &mut Prng) -> Vec<(i64, Value, Value)> {
    let n = rng.gen_range(0usize..50);
    (0..n)
        .map(|_| (rng.gen_range(0i64..1000), arb_value(rng), arb_value(rng)))
        .collect()
}

#[derive(Debug, Clone)]
enum Pred {
    Cmp(SqlCmpOp, Value),
    Like(String),
    IsNull(bool),
    In(Vec<Value>),
}

fn arb_pred(rng: &mut Prng) -> (usize, Pred) {
    const OPS: [SqlCmpOp; 6] = [
        SqlCmpOp::Eq,
        SqlCmpOp::Ne,
        SqlCmpOp::Lt,
        SqlCmpOp::Le,
        SqlCmpOp::Gt,
        SqlCmpOp::Ge,
    ];
    let pred = match rng.gen_range(0..7) {
        0..=3 => Pred::Cmp(OPS[rng.gen_range(0..OPS.len())], arb_non_null(rng)),
        4 => {
            const PAT: &[char] = &['v', '%', '_', '0', '9'];
            let len = rng.gen_range(0usize..4);
            Pred::Like((0..len).map(|_| PAT[rng.gen_range(0..PAT.len())]).collect())
        }
        5 => Pred::IsNull(rng.gen_bool(0.5)),
        _ => {
            let n = rng.gen_range(1usize..4);
            Pred::In((0..n).map(|_| arb_non_null(rng)).collect())
        }
    };
    (rng.gen_range(1usize..3), pred)
}

fn build_db(rows: &[(i64, Value, Value)], with_indexes: bool) -> Database {
    let mut db = Database::new("prop");
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("a", DataType::Text),
                Column::new("b", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    let mut seen = BTreeSet::new();
    for (id, a, b) in rows {
        if !seen.insert(*id) {
            continue; // PK duplicates are skipped, mirroring upsert-free load
        }
        // The schema says TEXT for a/b; coerce non-text values to text so
        // inserts succeed while the value distribution stays interesting.
        let coerce = |v: &Value| match v {
            Value::Null => Value::Null,
            Value::Text(_) => v.clone(),
            other => Value::text(other.to_string()),
        };
        db.insert_row("t", vec![Value::Int(*id), coerce(a), coerce(b)]).unwrap();
    }
    if with_indexes {
        db.create_index("t", "idx_a", &["a".to_string()], false).unwrap();
    }
    db
}

fn pred_to_ast(col: &str, p: &Pred) -> Predicate {
    use fedlake_relational::sql::ColumnRef;
    let c = ColumnRef::new(col);
    match p {
        Pred::Cmp(op, v) => Predicate::Compare {
            left: c,
            op: *op,
            right: Operand::Literal(v.clone()),
        },
        Pred::Like(pat) => Predicate::Like { col: c, pattern: pat.clone(), negated: false },
        Pred::IsNull(negated) => Predicate::IsNull { col: c, negated: *negated },
        Pred::In(values) => Predicate::InList { col: c, values: values.clone() },
    }
}

/// Reference semantics of a predicate on a value.
fn eval_ref(p: &Pred, v: &Value) -> bool {
    match p {
        Pred::Cmp(op, lit) => match v.sql_cmp(lit) {
            None => false,
            Some(ord) => match op {
                SqlCmpOp::Eq => ord == Ordering::Equal,
                SqlCmpOp::Ne => ord != Ordering::Equal,
                SqlCmpOp::Lt => ord == Ordering::Less,
                SqlCmpOp::Le => ord != Ordering::Greater,
                SqlCmpOp::Gt => ord == Ordering::Greater,
                SqlCmpOp::Ge => ord != Ordering::Less,
            },
        },
        Pred::Like(pat) => v.like(pat),
        Pred::IsNull(negated) => v.is_null() != *negated,
        Pred::In(values) => {
            !v.is_null() && values.iter().any(|w| v.sql_cmp(w) == Some(Ordering::Equal))
        }
    }
}

/// Executing a filtered SELECT must equal naive row filtering, with and
/// without a secondary index — and the two engines must agree.
#[test]
fn select_matches_reference_and_indexes_do_not_change_answers() {
    let mut rng = Prng::seed_from_u64(0x59_1001);
    for _ in 0..96 {
        let rows = arb_rows(&mut rng);
        let n_preds = rng.gen_range(0usize..3);
        let preds: Vec<(usize, Pred)> = (0..n_preds).map(|_| arb_pred(&mut rng)).collect();
        let plain = build_db(&rows, false);
        let indexed = build_db(&rows, true);
        // Build the statement through the public AST by parsing a base
        // query and swapping in the predicates.
        let base = match parse("SELECT id FROM t").unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        };
        let mut stmt = base;
        for (col_idx, p) in &preds {
            let col = if *col_idx == 1 { "a" } else { "b" };
            stmt.predicates.push(pred_to_ast(col, p));
        }
        let r_plain = plain.run_select(&stmt).unwrap();
        let r_indexed = indexed.run_select(&stmt).unwrap();

        // Reference evaluation over the raw rows.
        let table = plain.table("t").unwrap();
        let expected: BTreeSet<i64> = table
            .iter()
            .filter(|(_, row)| {
                preds.iter().all(|(col_idx, p)| {
                    let v = &row[*col_idx];
                    eval_ref(p, v)
                })
            })
            .map(|(_, row)| row[0].as_i64().unwrap())
            .collect();

        let got_plain: BTreeSet<i64> =
            r_plain.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let got_indexed: BTreeSet<i64> =
            r_indexed.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(got_plain, expected);
        assert_eq!(got_indexed, expected);
    }
}

/// Join answers are independent of which join algorithm the optimizer
/// picks (INLJ when indexed, hash otherwise).
#[test]
fn join_algorithms_agree() {
    let mut rng = Prng::seed_from_u64(0x59_1002);
    for _ in 0..96 {
        let rows = arb_rows(&mut rng);
        let build = |with_fk_index: bool| {
            let mut db = Database::new("j");
            db.execute("CREATE TABLE l (id INT PRIMARY KEY, k TEXT)").unwrap();
            db.execute("CREATE TABLE r (id INT PRIMARY KEY, k TEXT)").unwrap();
            let mut seen = BTreeSet::new();
            for (id, a, _) in &rows {
                if !seen.insert(*id) {
                    continue;
                }
                let k = match a {
                    Value::Null => Value::Null,
                    v => Value::text(v.to_string()),
                };
                db.insert_row("l", vec![Value::Int(*id), k.clone()]).unwrap();
                db.insert_row("r", vec![Value::Int(id + 1), k]).unwrap();
            }
            if with_fk_index {
                db.create_index("r", "idx_rk", &["k".to_string()], false).unwrap();
            }
            db
        };
        let hash_db = build(false);
        let inlj_db = build(true);
        let sql = "SELECT l.id, r.id FROM l JOIN r ON l.k = r.k";
        let to_set = |rs: &fedlake_relational::ResultSet| -> BTreeSet<(i64, i64)> {
            rs.rows
                .iter()
                .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
                .collect()
        };
        let a = hash_db.query(sql).unwrap();
        let b = inlj_db.query(sql).unwrap();
        assert_eq!(to_set(&a), to_set(&b));
    }
}

/// ORDER BY produces a total, stable order consistent with the value
/// ordering, and LIMIT is a prefix of it.
#[test]
fn order_by_and_limit() {
    let mut rng = Prng::seed_from_u64(0x59_1003);
    for _ in 0..96 {
        let rows = arb_rows(&mut rng);
        let limit = rng.gen_range(0usize..20);
        let db = build_db(&rows, false);
        let all = db.query("SELECT id, a FROM t ORDER BY a, id").unwrap();
        for w in all.rows.windows(2) {
            let ka = (&w[0][1], w[0][0].as_i64().unwrap());
            let kb = (&w[1][1], w[1][0].as_i64().unwrap());
            assert!(ka <= kb, "rows out of order: {ka:?} > {kb:?}");
        }
        let limited = db
            .query(&format!("SELECT id, a FROM t ORDER BY a, id LIMIT {limit}"))
            .unwrap();
        assert_eq!(&all.rows[..limit.min(all.rows.len())], &limited.rows[..]);
    }
}
