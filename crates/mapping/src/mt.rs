//! RDF Molecule Templates (RDF-MTs).
//!
//! An RDF-MT (MULDER, Endris et al. 2018) is an abstract description of one
//! class of entities at one source: the predicates its instances share and
//! the links to other molecule templates. The federated engine matches
//! star-shaped sub-queries against RDF-MTs to select sources.

use crate::{DatasetMapping, TableMapping};
use fedlake_rdf::{Graph, Term, TriplePattern};

/// A link from one molecule template to another class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtLink {
    /// The linking predicate.
    pub predicate: String,
    /// The class of the link's target entities.
    pub target_class: String,
}

/// An RDF Molecule Template: one entity class at one source.
#[derive(Debug, Clone, PartialEq)]
pub struct RdfMoleculeTemplate {
    /// The described class IRI.
    pub class: String,
    /// The source offering this molecule.
    pub source_id: String,
    /// Predicates the class's instances carry (including `rdf:type`).
    pub predicates: Vec<String>,
    /// Intra- and inter-source links.
    pub links: Vec<MtLink>,
    /// Number of instances at the source (0 when unknown).
    pub cardinality: usize,
}

impl RdfMoleculeTemplate {
    /// True when this molecule offers every predicate in `preds`.
    /// `rdf:type` is always considered offered.
    pub fn offers_all(&self, preds: &[&str]) -> bool {
        preds.iter().all(|p| {
            *p == fedlake_rdf::vocab::rdf::TYPE || self.predicates.iter().any(|q| q == p)
        })
    }
}

/// Extracts RDF-MTs from an RDF source by scanning its `rdf:type` triples
/// and instance predicates — how MULDER/Ontario bootstrap descriptions of
/// SPARQL endpoints.
pub fn extract_from_graph(graph: &Graph, source_id: &str) -> Vec<RdfMoleculeTemplate> {
    let Some(type_id) = graph.id(&Term::iri(fedlake_rdf::vocab::rdf::TYPE)) else {
        return Vec::new();
    };
    // Collect classes.
    let mut classes: Vec<fedlake_rdf::TermId> = Vec::new();
    for t in graph.match_pattern(&TriplePattern::any().with_p(type_id)) {
        if !classes.contains(&t.o) {
            classes.push(t.o);
        }
    }
    let mut out = Vec::new();
    for class in classes {
        let instances = graph.instances_of(class);
        let mut predicates: Vec<String> = Vec::new();
        let mut links: Vec<MtLink> = Vec::new();
        for s in &instances {
            for t in graph.match_pattern(&TriplePattern::any().with_s(*s)) {
                let p = graph
                    .term(t.p)
                    .and_then(Term::as_iri)
                    .expect("predicates are IRIs")
                    .to_string();
                if !predicates.contains(&p) {
                    predicates.push(p.clone());
                }
                // A link exists when the object is itself a typed instance.
                if let Some(o_term) = graph.term(t.o) {
                    if o_term.is_iri() {
                        for tt in graph
                            .match_pattern(&TriplePattern::any().with_s(t.o).with_p(type_id))
                        {
                            let target = graph
                                .term(tt.o)
                                .and_then(Term::as_iri)
                                .expect("classes are IRIs")
                                .to_string();
                            let link = MtLink { predicate: p.clone(), target_class: target };
                            if !links.contains(&link) {
                                links.push(link);
                            }
                        }
                    }
                }
            }
        }
        let class_iri = graph
            .term(class)
            .and_then(Term::as_iri)
            .expect("classes are IRIs")
            .to_string();
        out.push(RdfMoleculeTemplate {
            class: class_iri,
            source_id: source_id.to_string(),
            predicates,
            links,
            cardinality: instances.len(),
        });
    }
    out.sort_by(|a, b| a.class.cmp(&b.class));
    out
}

/// Derives RDF-MTs from a relational dataset's mapping — no scan needed;
/// the mapping *is* the semantic description. `cardinalities` supplies the
/// per-table row counts when known.
pub fn derive_from_mapping(
    mapping: &DatasetMapping,
    cardinality_of: impl Fn(&TableMapping) -> usize,
) -> Vec<RdfMoleculeTemplate> {
    let mut out: Vec<RdfMoleculeTemplate> = mapping
        .tables
        .iter()
        .map(|t| {
            let mut predicates = vec![fedlake_rdf::vocab::rdf::TYPE.to_string()];
            predicates.extend(t.predicates.iter().map(|p| p.predicate.clone()));
            let links = t
                .predicates
                .iter()
                .filter_map(|p| {
                    p.ref_template.as_ref().and_then(|tmpl| {
                        // The target class is the mapping (in any dataset
                        // table of this mapping) whose subject template
                        // matches; cross-dataset links resolve at the
                        // federation level.
                        mapping
                            .tables
                            .iter()
                            .find(|t2| t2.subject_template == *tmpl)
                            .map(|t2| MtLink {
                                predicate: p.predicate.clone(),
                                target_class: t2.class.clone(),
                            })
                    })
                })
                .collect();
            RdfMoleculeTemplate {
                class: t.class.clone(),
                source_id: mapping.source_id.clone(),
                predicates,
                links,
                cardinality: cardinality_of(t),
            }
        })
        .collect();
    out.sort_by(|a, b| a.class.cmp(&b.class));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IriTemplate;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let typ = Term::iri(fedlake_rdf::vocab::rdf::TYPE);
        let gene = Term::iri("http://v/Gene");
        let disease = Term::iri("http://v/Disease");
        for i in 0..3 {
            let s = Term::iri(format!("http://d/gene/g{i}"));
            g.insert_terms(s.clone(), typ.clone(), gene.clone());
            g.insert_terms(s.clone(), Term::iri("http://v/label"), Term::literal(format!("gene {i}")));
            let d = Term::iri(format!("http://d/disease/d{i}"));
            g.insert_terms(d.clone(), typ.clone(), disease.clone());
            g.insert_terms(s, Term::iri("http://v/associated"), d);
        }
        g
    }

    #[test]
    fn extract_finds_classes_and_predicates() {
        let mts = extract_from_graph(&sample_graph(), "src");
        assert_eq!(mts.len(), 2);
        let gene = mts.iter().find(|m| m.class == "http://v/Gene").unwrap();
        assert_eq!(gene.cardinality, 3);
        assert!(gene.predicates.iter().any(|p| p == "http://v/label"));
        assert!(gene.predicates.iter().any(|p| p == "http://v/associated"));
        assert!(gene
            .predicates
            .iter()
            .any(|p| p == fedlake_rdf::vocab::rdf::TYPE));
    }

    #[test]
    fn extract_finds_links() {
        let mts = extract_from_graph(&sample_graph(), "src");
        let gene = mts.iter().find(|m| m.class == "http://v/Gene").unwrap();
        assert!(gene.links.contains(&MtLink {
            predicate: "http://v/associated".into(),
            target_class: "http://v/Disease".into()
        }));
        let disease = mts.iter().find(|m| m.class == "http://v/Disease").unwrap();
        assert!(disease.links.is_empty());
    }

    #[test]
    fn offers_all_semantics() {
        let mt = RdfMoleculeTemplate {
            class: "C".into(),
            source_id: "s".into(),
            predicates: vec!["p".into(), "q".into()],
            links: Vec::new(),
            cardinality: 1,
        };
        assert!(mt.offers_all(&["p"]));
        assert!(mt.offers_all(&["p", "q", fedlake_rdf::vocab::rdf::TYPE]));
        assert!(!mt.offers_all(&["p", "r"]));
    }

    #[test]
    fn derive_from_mapping_builds_links() {
        let disease_tmpl = IriTemplate::new("http://d/disease/{}");
        let m = DatasetMapping::new("diseasome")
            .with_table(
                TableMapping::new(
                    "gene",
                    "http://v/Gene",
                    IriTemplate::new("http://d/gene/{}"),
                    "id",
                )
                .with_literal("label", "http://v/label")
                .with_reference("disease", "http://v/associated", disease_tmpl.clone()),
            )
            .with_table(TableMapping::new(
                "disease",
                "http://v/Disease",
                disease_tmpl,
                "id",
            ));
        let mts = derive_from_mapping(&m, |t| if t.table == "gene" { 10 } else { 5 });
        assert_eq!(mts.len(), 2);
        let gene = mts.iter().find(|m| m.class == "http://v/Gene").unwrap();
        assert_eq!(gene.cardinality, 10);
        assert_eq!(gene.links.len(), 1);
        assert_eq!(gene.links[0].target_class, "http://v/Disease");
        // rdf:type is always offered.
        assert!(gene.offers_all(&[fedlake_rdf::vocab::rdf::TYPE, "http://v/label"]));
    }

    #[test]
    fn extract_on_untyped_graph_is_empty() {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert!(extract_from_graph(&g, "x").is_empty());
    }
}
