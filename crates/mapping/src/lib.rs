//! # fedlake-mapping
//!
//! Semantic annotations for the data lake: RML-style mappings from
//! relational tables to RDF classes, RDF Molecule Templates (RDF-MTs) as
//! source descriptions, and RDF *lifting* of relational data.
//!
//! A [`TableMapping`] declares how one 3NF table represents one RDF class:
//! the subject IRI is minted from the primary key through an IRI
//! [`template`], each column maps to a predicate, and foreign-key columns
//! map to object references of other classes. Following the paper's
//! assumption (§2.2), *"the subjects of a SPARQL query are modeled as the
//! primary keys of the tables"*.
//!
//! [`RdfMoleculeTemplate`]s (from MULDER) describe which predicates a class
//! offers at which source and how classes interlink; the federated engine
//! uses them for source selection and decomposition. They can be
//! [extracted](mt::extract_from_graph) from RDF sources by scanning, or
//! [derived](mt::derive_from_mapping) from mappings for relational sources.
//!
//! [`lift`] materializes the RDF view of a mapped relational database —
//! used by the data generator to build equivalent RDF/relational dataset
//! pairs and by the test suite as a ground-truth oracle: a federated query
//! over the relational source must return exactly the answers of a local
//! SPARQL evaluation over the lifted graph.

pub mod lift;
pub mod mt;
pub mod template;

pub use lift::lift_database;
pub use mt::{MtLink, RdfMoleculeTemplate};
pub use template::IriTemplate;

use fedlake_relational::DataType;

/// How one column of a mapped table appears in RDF.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateMapping {
    /// Source column (lowercase).
    pub column: String,
    /// The predicate IRI this column maps to.
    pub predicate: String,
    /// When set, the column is a foreign key and its value is lifted to an
    /// entity IRI via this template instead of a literal.
    pub ref_template: Option<IriTemplate>,
}

impl PredicateMapping {
    /// A literal-valued predicate.
    pub fn literal(column: impl Into<String>, predicate: impl Into<String>) -> Self {
        PredicateMapping {
            column: column.into().to_lowercase(),
            predicate: predicate.into(),
            ref_template: None,
        }
    }

    /// An object-reference predicate minted through `template`.
    pub fn reference(
        column: impl Into<String>,
        predicate: impl Into<String>,
        template: IriTemplate,
    ) -> Self {
        PredicateMapping {
            column: column.into().to_lowercase(),
            predicate: predicate.into(),
            ref_template: Some(template),
        }
    }
}

/// Maps one relational table to one RDF class.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMapping {
    /// The mapped table (lowercase).
    pub table: String,
    /// The RDF class its rows instantiate.
    pub class: String,
    /// Template minting subject IRIs from the subject column.
    pub subject_template: IriTemplate,
    /// The column (normally the primary key) feeding the subject template.
    pub subject_column: String,
    /// Column→predicate mappings.
    pub predicates: Vec<PredicateMapping>,
}

impl TableMapping {
    /// Creates a mapping.
    pub fn new(
        table: impl Into<String>,
        class: impl Into<String>,
        subject_template: IriTemplate,
        subject_column: impl Into<String>,
    ) -> Self {
        TableMapping {
            table: table.into().to_lowercase(),
            class: class.into(),
            subject_template,
            subject_column: subject_column.into().to_lowercase(),
            predicates: Vec::new(),
        }
    }

    /// Builder: adds a literal predicate mapping.
    pub fn with_literal(mut self, column: &str, predicate: &str) -> Self {
        self.predicates.push(PredicateMapping::literal(column, predicate));
        self
    }

    /// Builder: adds an object-reference predicate mapping.
    pub fn with_reference(mut self, column: &str, predicate: &str, template: IriTemplate) -> Self {
        self.predicates
            .push(PredicateMapping::reference(column, predicate, template));
        self
    }

    /// The column mapped to `predicate`, if any.
    pub fn column_for_predicate(&self, predicate: &str) -> Option<&PredicateMapping> {
        self.predicates.iter().find(|p| p.predicate == predicate)
    }

    /// All predicate IRIs this mapping offers.
    pub fn predicate_iris(&self) -> Vec<&str> {
        self.predicates.iter().map(|p| p.predicate.as_str()).collect()
    }
}

/// The full mapping of one dataset (one database) in the lake.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetMapping {
    /// Dataset/source identifier.
    pub source_id: String,
    /// Table mappings.
    pub tables: Vec<TableMapping>,
}

impl DatasetMapping {
    /// Creates an empty dataset mapping.
    pub fn new(source_id: impl Into<String>) -> Self {
        DatasetMapping { source_id: source_id.into(), tables: Vec::new() }
    }

    /// Builder: adds a table mapping.
    pub fn with_table(mut self, t: TableMapping) -> Self {
        self.tables.push(t);
        self
    }

    /// The mapping whose class is `class`, if any.
    pub fn for_class(&self, class: &str) -> Option<&TableMapping> {
        self.tables.iter().find(|t| t.class == class)
    }

    /// The mapping for `table`, if any.
    pub fn for_table(&self, table: &str) -> Option<&TableMapping> {
        let table = table.to_lowercase();
        self.tables.iter().find(|t| t.table == table)
    }
}

/// The XSD datatype IRI a relational column type lifts to (`None` for
/// text, which lifts to plain literals).
pub fn xsd_for(dt: DataType) -> Option<&'static str> {
    match dt {
        DataType::Int => Some(fedlake_rdf::vocab::xsd::INTEGER),
        DataType::Double => Some(fedlake_rdf::vocab::xsd::DOUBLE),
        DataType::Bool => Some(fedlake_rdf::vocab::xsd::BOOLEAN),
        DataType::Text => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> TableMapping {
        TableMapping::new(
            "gene",
            "http://lake/vocab/Gene",
            IriTemplate::new("http://lake/diseasome/gene/{}"),
            "id",
        )
        .with_literal("label", "http://www.w3.org/2000/01/rdf-schema#label")
        .with_reference(
            "disease",
            "http://lake/vocab/associatedWith",
            IriTemplate::new("http://lake/diseasome/disease/{}"),
        )
    }

    #[test]
    fn builder_and_lookup() {
        let m = mapping();
        assert_eq!(m.predicates.len(), 2);
        assert!(m
            .column_for_predicate("http://www.w3.org/2000/01/rdf-schema#label")
            .is_some());
        assert!(m.column_for_predicate("http://nope").is_none());
        assert_eq!(m.predicate_iris().len(), 2);
    }

    #[test]
    fn dataset_lookup() {
        let d = DatasetMapping::new("diseasome").with_table(mapping());
        assert!(d.for_class("http://lake/vocab/Gene").is_some());
        assert!(d.for_table("GENE").is_some());
        assert!(d.for_class("http://lake/vocab/Drug").is_none());
    }

    #[test]
    fn xsd_mapping() {
        assert_eq!(xsd_for(DataType::Int), Some(fedlake_rdf::vocab::xsd::INTEGER));
        assert_eq!(xsd_for(DataType::Text), None);
    }
}
