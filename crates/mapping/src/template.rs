//! IRI templates: minting entity IRIs from key values and recovering key
//! values from IRIs.

use std::fmt;

/// An IRI template with exactly one `{}` placeholder, e.g.
/// `http://lake/diseasome/gene/{}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IriTemplate {
    prefix: String,
    suffix: String,
}

impl IriTemplate {
    /// Creates a template. Panics when the pattern does not contain exactly
    /// one `{}` placeholder.
    pub fn new(pattern: impl AsRef<str>) -> Self {
        let pattern = pattern.as_ref();
        let mut parts = pattern.splitn(2, "{}");
        let prefix = parts.next().unwrap_or_default().to_string();
        let suffix = parts
            .next()
            .unwrap_or_else(|| panic!("IRI template {pattern:?} must contain '{{}}'"))
            .to_string();
        assert!(
            !suffix.contains("{}"),
            "IRI template {pattern:?} must contain exactly one '{{}}'"
        );
        IriTemplate { prefix: prefix.clone(), suffix }
    }

    /// Mints an IRI for `key`, percent-encoding characters unsafe in IRIs.
    pub fn apply(&self, key: &str) -> String {
        // Built by hand (not `format!`): minting runs once per lifted
        // value on the wrapper's hot path, and the fmt machinery costs
        // more than the copies themselves.
        let mut out =
            String::with_capacity(self.prefix.len() + key.len() + self.suffix.len());
        out.push_str(&self.prefix);
        encode_into(key, &mut out);
        out.push_str(&self.suffix);
        out
    }

    /// Recovers the key from an IRI minted by this template.
    pub fn extract(&self, iri: &str) -> Option<String> {
        let inner = iri.strip_prefix(self.prefix.as_str())?;
        let key = inner.strip_suffix(self.suffix.as_str())?;
        if key.is_empty() {
            return None;
        }
        Some(decode(key))
    }

    /// True when `iri` could have been minted by this template.
    pub fn matches(&self, iri: &str) -> bool {
        self.extract(iri).is_some()
    }
}

impl fmt::Display for IriTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{}}{}", self.prefix, self.suffix)
    }
}

fn is_safe(b: u8) -> bool {
    matches!(b, b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~')
}

fn encode_into(key: &str, out: &mut String) {
    if key.bytes().all(is_safe) {
        out.push_str(key);
        return;
    }
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    for b in key.bytes() {
        if is_safe(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0x0f) as usize] as char);
        }
    }
}

fn decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 {
            if let (Some(h), Some(l)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((h * 16 + l) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_extract() {
        let t = IriTemplate::new("http://lake/gene/{}");
        let iri = t.apply("g42");
        assert_eq!(iri, "http://lake/gene/g42");
        assert_eq!(t.extract(&iri), Some("g42".into()));
        assert!(t.matches(&iri));
        assert!(!t.matches("http://lake/disease/d1"));
    }

    #[test]
    fn suffix_templates() {
        let t = IriTemplate::new("http://lake/{}.html");
        assert_eq!(t.apply("x"), "http://lake/x.html");
        assert_eq!(t.extract("http://lake/x.html"), Some("x".into()));
        assert_eq!(t.extract("http://lake/x.json"), None);
    }

    #[test]
    fn roundtrip_special_chars() {
        let t = IriTemplate::new("http://lake/drug/{}");
        for key in ["a b", "x/y", "100%", "ü", "a#b?c"] {
            let iri = t.apply(key);
            assert!(!iri.contains(' '), "space must be encoded: {iri}");
            assert_eq!(t.extract(&iri).as_deref(), Some(key), "roundtrip of {key:?}");
        }
    }

    #[test]
    fn empty_key_rejected_on_extract() {
        let t = IriTemplate::new("http://lake/gene/{}");
        assert_eq!(t.extract("http://lake/gene/"), None);
    }

    #[test]
    #[should_panic(expected = "must contain")]
    fn pattern_without_placeholder_panics() {
        IriTemplate::new("http://lake/gene/");
    }

    #[test]
    fn display_roundtrips_pattern() {
        let t = IriTemplate::new("http://lake/gene/{}");
        assert_eq!(t.to_string(), "http://lake/gene/{}");
    }
}
