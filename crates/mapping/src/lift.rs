//! RDF lifting: materializing the RDF view of a mapped relational database.
//!
//! The LSLOD benchmark's datasets exist in both RDF and relational form
//! (the paper transforms the RDF versions into 3NF tables). Lifting gives
//! us the inverse direction, which the workspace uses twice: the data
//! generator builds dataset pairs (same content, two data models), and the
//! test suite uses the lifted graph as a ground-truth oracle for federated
//! answers over the relational source.

use crate::{xsd_for, DatasetMapping, TableMapping};
use fedlake_rdf::{Graph, Literal, Term};
use fedlake_relational::{Database, Value};

/// Lifts every mapped table of `db` into one RDF graph.
pub fn lift_database(db: &Database, mapping: &DatasetMapping) -> Graph {
    let mut g = Graph::new();
    for tm in &mapping.tables {
        lift_table(db, tm, &mut g);
    }
    g
}

/// Lifts one mapped table into `graph`.
pub fn lift_table(db: &Database, tm: &TableMapping, graph: &mut Graph) {
    let Some(table) = db.table(&tm.table) else {
        return;
    };
    let Some(subject_pos) = table.schema.column_index(&tm.subject_column) else {
        return;
    };
    let type_pred = Term::iri(fedlake_rdf::vocab::rdf::TYPE);
    let class = Term::iri(&tm.class);
    for (_, row) in table.iter() {
        let key = &row[subject_pos];
        if key.is_null() {
            continue;
        }
        let subject = Term::iri(tm.subject_template.apply(&value_key(key)));
        graph.insert_terms(subject.clone(), type_pred.clone(), class.clone());
        for pm in &tm.predicates {
            let Some(pos) = table.schema.column_index(&pm.column) else {
                continue;
            };
            let v = &row[pos];
            if v.is_null() {
                continue;
            }
            let object = match &pm.ref_template {
                Some(tmpl) => Term::iri(tmpl.apply(&value_key(v))),
                None => value_to_term(v, table.schema.columns[pos].data_type),
            };
            graph.insert_terms(subject.clone(), Term::iri(&pm.predicate), object);
        }
    }
}

/// The canonical key string of a value (used in IRI templates).
pub fn value_key(v: &Value) -> String {
    match v {
        Value::Text(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => d.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Null => String::new(),
    }
}

/// Lifts a relational value to an RDF literal term.
pub fn value_to_term(v: &Value, dt: fedlake_relational::DataType) -> Term {
    let lexical = value_key(v);
    match xsd_for(dt) {
        Some(xsd) => Term::Literal(Literal::typed(lexical, xsd)),
        None => Term::Literal(Literal::plain(lexical)),
    }
}

/// Lowers an RDF term back to a relational value (the wrapper direction:
/// SPARQL filter constants must become SQL literals).
pub fn term_to_value(t: &Term) -> Value {
    match t {
        Term::Iri(i) => Value::Text(i.clone()),
        Term::Blank(b) => Value::Text(b.clone()),
        Term::Literal(l) => {
            if let Some(dt) = &l.datatype {
                if dt == fedlake_rdf::vocab::xsd::INTEGER
                    || dt.ends_with("#int")
                    || dt.ends_with("#long")
                {
                    if let Some(i) = l.as_integer() {
                        return Value::Int(i);
                    }
                }
                if fedlake_rdf::vocab::xsd::is_numeric(dt) {
                    if let Some(d) = l.as_double() {
                        return Value::Double(d);
                    }
                }
                if dt == fedlake_rdf::vocab::xsd::BOOLEAN {
                    return Value::Bool(l.lexical == "true" || l.lexical == "1");
                }
            }
            Value::Text(l.lexical.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IriTemplate;
    use fedlake_rdf::TriplePattern;

    fn db_and_mapping() -> (Database, DatasetMapping) {
        let mut db = Database::new("diseasome");
        db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, len INT)")
            .unwrap();
        db.execute("INSERT INTO gene VALUES ('g1', 'BRCA1', 1863)").unwrap();
        db.execute("INSERT INTO gene VALUES ('g2', NULL, 500)").unwrap();
        db.execute(
            "CREATE TABLE gene_disease (gene TEXT, disease TEXT, PRIMARY KEY (gene, disease))",
        )
        .unwrap();
        db.execute("INSERT INTO gene_disease VALUES ('g1', 'd9')").unwrap();
        let mapping = DatasetMapping::new("diseasome")
            .with_table(
                TableMapping::new(
                    "gene",
                    "http://v/Gene",
                    IriTemplate::new("http://d/gene/{}"),
                    "id",
                )
                .with_literal("label", "http://v/label")
                .with_literal("len", "http://v/length"),
            )
            .with_table(
                TableMapping::new(
                    "gene_disease",
                    "http://v/GeneDisease",
                    IriTemplate::new("http://d/gd/{}"),
                    "gene",
                )
                .with_reference(
                    "disease",
                    "http://v/disease",
                    IriTemplate::new("http://d/disease/{}"),
                ),
            );
        (db, mapping)
    }

    #[test]
    fn lift_produces_types_and_literals() {
        let (db, m) = db_and_mapping();
        let g = lift_database(&db, &m);
        // g1: type + label + length; g2: type + length (NULL label skipped);
        // gd g1: type + disease ref.
        assert_eq!(g.len(), 7);
        let label = g.id(&Term::literal("BRCA1")).unwrap();
        assert_eq!(g.match_pattern(&TriplePattern::any().with_o(label)).len(), 1);
        // Integers lift to typed literals.
        assert!(g.id(&Term::integer(1863)).is_some());
    }

    #[test]
    fn lift_mints_reference_iris() {
        let (db, m) = db_and_mapping();
        let g = lift_database(&db, &m);
        assert!(g.id(&Term::iri("http://d/disease/d9")).is_some());
    }

    #[test]
    fn null_values_produce_no_triple() {
        let (db, m) = db_and_mapping();
        let g = lift_database(&db, &m);
        let label_pred = g.id(&Term::iri("http://v/label")).unwrap();
        assert_eq!(
            g.match_pattern(&TriplePattern::any().with_p(label_pred)).len(),
            1
        );
    }

    #[test]
    fn term_value_roundtrip() {
        assert_eq!(term_to_value(&Term::integer(5)), Value::Int(5));
        assert_eq!(term_to_value(&Term::double(1.5)), Value::Double(1.5));
        assert_eq!(term_to_value(&Term::literal("x")), Value::Text("x".into()));
        assert_eq!(
            term_to_value(&Term::Literal(Literal::boolean(true))),
            Value::Bool(true)
        );
        assert_eq!(
            term_to_value(&Term::iri("http://x")),
            Value::Text("http://x".into())
        );
    }

    #[test]
    fn value_term_roundtrip_via_datatype() {
        use fedlake_relational::DataType;
        let cases = [
            (Value::Int(42), DataType::Int),
            (Value::Double(2.5), DataType::Double),
            (Value::Text("abc".into()), DataType::Text),
            (Value::Bool(true), DataType::Bool),
        ];
        for (v, dt) in cases {
            let t = value_to_term(&v, dt);
            assert_eq!(term_to_value(&t), v, "roundtrip of {v:?}");
        }
    }
}
