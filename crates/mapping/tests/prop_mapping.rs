//! Property-based tests for the mapping layer: IRI template round-trips
//! over arbitrary keys, and the value↔term lifting bijection.

use fedlake_mapping::lift::{term_to_value, value_key, value_to_term};
use fedlake_mapping::IriTemplate;
use fedlake_relational::{DataType, Value};
use proptest::prelude::*;

proptest! {
    /// apply ∘ extract is the identity for any non-empty key, including
    /// keys full of IRI-hostile characters.
    #[test]
    fn template_roundtrip(key in ".{1,40}") {
        let t = IriTemplate::new("http://lake/entity/{}");
        let iri = t.apply(&key);
        // The minted IRI must be safe: no spaces, quotes or angle brackets.
        prop_assert!(!iri.contains([' ', '"', '<', '>', '\n', '\t']), "unsafe IRI {iri}");
        let extracted = t.extract(&iri);
        prop_assert_eq!(extracted.as_deref(), Some(key.as_str()));
    }

    /// Templates with suffixes round-trip too.
    #[test]
    fn suffixed_template_roundtrip(key in "[a-zA-Z0-9 /%]{1,20}") {
        let t = IriTemplate::new("http://lake/e/{}.html");
        let iri = t.apply(&key);
        prop_assert!(iri.ends_with(".html"));
        let extracted = t.extract(&iri);
        prop_assert_eq!(extracted.as_deref(), Some(key.as_str()));
    }

    /// Two distinct keys never mint the same IRI (injectivity).
    #[test]
    fn template_is_injective(a in ".{1,20}", b in ".{1,20}") {
        prop_assume!(a != b);
        let t = IriTemplate::new("http://lake/entity/{}");
        prop_assert_ne!(t.apply(&a), t.apply(&b));
    }

    /// Lifting a relational value to a term and lowering it back is the
    /// identity for type-consistent values.
    #[test]
    fn lift_lower_roundtrip(
        pick in 0u8..4,
        i in any::<i64>(),
        d in -1e12f64..1e12,
        s in ".{0,30}",
        b in any::<bool>(),
    ) {
        let (v, dt) = match pick {
            0 => (Value::Int(i), DataType::Int),
            1 => (Value::Double(d), DataType::Double),
            2 => (Value::Text(s.clone()), DataType::Text),
            _ => (Value::Bool(b), DataType::Bool),
        };
        let term = value_to_term(&v, dt);
        prop_assert_eq!(term_to_value(&term), v);
    }

    /// `value_key` never loses information for text keys (it is the raw
    /// string) and is stable for numerics.
    #[test]
    fn value_key_stability(s in ".{0,30}", i in any::<i64>()) {
        prop_assert_eq!(value_key(&Value::Text(s.clone())), s);
        prop_assert_eq!(value_key(&Value::Int(i)), i.to_string());
    }
}
