//! Randomized tests for the mapping layer: IRI template round-trips over
//! hostile keys, and the value↔term lifting bijection. Deterministically
//! seeded via the in-repo PRNG.

use fedlake_mapping::lift::{term_to_value, value_key, value_to_term};
use fedlake_mapping::IriTemplate;
use fedlake_prng::Prng;
use fedlake_relational::{DataType, Value};

/// IRI-hostile characters mixed with plain ones.
const POOL: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '"', '<', '>', '\n', '\t', '%', '/', '{', '}',
    '#', '?', 'é', '✓',
];

fn rand_key(rng: &mut Prng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

fn rand_safe_key(rng: &mut Prng, min: usize, max: usize) -> String {
    const SAFE: &[char] = &['a', 'Z', '0', '9', ' ', '/', '%'];
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| SAFE[rng.gen_range(0..SAFE.len())]).collect()
}

/// apply ∘ extract is the identity for any non-empty key, including keys
/// full of IRI-hostile characters.
#[test]
fn template_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x3a99_0001);
    let t = IriTemplate::new("http://lake/entity/{}");
    for _ in 0..256 {
        let key = rand_key(&mut rng, 1, 40);
        let iri = t.apply(&key);
        // The minted IRI must be safe: no spaces, quotes or angle brackets.
        assert!(!iri.contains([' ', '"', '<', '>', '\n', '\t']), "unsafe IRI {iri}");
        let extracted = t.extract(&iri);
        assert_eq!(extracted.as_deref(), Some(key.as_str()));
    }
}

/// Templates with suffixes round-trip too.
#[test]
fn suffixed_template_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x3a99_0002);
    let t = IriTemplate::new("http://lake/e/{}.html");
    for _ in 0..256 {
        let key = rand_safe_key(&mut rng, 1, 20);
        let iri = t.apply(&key);
        assert!(iri.ends_with(".html"));
        let extracted = t.extract(&iri);
        assert_eq!(extracted.as_deref(), Some(key.as_str()));
    }
}

/// Two distinct keys never mint the same IRI (injectivity).
#[test]
fn template_is_injective() {
    let mut rng = Prng::seed_from_u64(0x3a99_0003);
    let t = IriTemplate::new("http://lake/entity/{}");
    for _ in 0..256 {
        let a = rand_key(&mut rng, 1, 20);
        let b = rand_key(&mut rng, 1, 20);
        if a == b {
            continue;
        }
        assert_ne!(t.apply(&a), t.apply(&b));
    }
}

/// Lifting a relational value to a term and lowering it back is the
/// identity for type-consistent values.
#[test]
fn lift_lower_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x3a99_0004);
    for _ in 0..256 {
        let (v, dt) = match rng.gen_range(0..4) {
            0 => (Value::Int(rng.next_u64() as i64), DataType::Int),
            1 => (Value::Double(rng.gen_range(-1e12..1e12)), DataType::Double),
            2 => (Value::Text(rand_key(&mut rng, 0, 30)), DataType::Text),
            _ => (Value::Bool(rng.gen_bool(0.5)), DataType::Bool),
        };
        let term = value_to_term(&v, dt);
        assert_eq!(term_to_value(&term), v);
    }
}

/// `value_key` never loses information for text keys (it is the raw
/// string) and is stable for numerics.
#[test]
fn value_key_stability() {
    let mut rng = Prng::seed_from_u64(0x3a99_0005);
    for _ in 0..256 {
        let s = rand_key(&mut rng, 0, 30);
        let i = rng.next_u64() as i64;
        assert_eq!(value_key(&Value::Text(s.clone())), s);
        assert_eq!(value_key(&Value::Int(i)), i.to_string());
    }
}
