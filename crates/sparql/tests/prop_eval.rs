//! Randomized tests for the SPARQL evaluator: the optimized BGP
//! evaluation (greedy pattern ordering + index nested loops) must agree
//! with a naive reference join, and solution modifiers must obey their
//! algebraic laws. Deterministically seeded via the in-repo PRNG.

use fedlake_prng::Prng;
use fedlake_rdf::{Graph, Term};
use fedlake_sparql::ast::{TriplePattern, VarOrTerm};
use fedlake_sparql::binding::{Row, Var};
use fedlake_sparql::eval::{eval_bgp, evaluate};
use fedlake_sparql::parser::parse_query;
use std::collections::BTreeMap;

fn term_pool() -> Vec<Term> {
    let mut pool = Vec::new();
    for i in 0..6 {
        pool.push(Term::iri(format!("http://x/r{i}")));
    }
    for i in 0..3 {
        pool.push(Term::literal(format!("v{i}")));
    }
    pool
}

fn arb_graph(rng: &mut Prng) -> Graph {
    let pool = term_pool();
    let mut g = Graph::new();
    let n = rng.gen_range(0usize..50);
    for _ in 0..n {
        let (s, p, o) = (
            rng.gen_range(0usize..6),
            rng.gen_range(0usize..4),
            rng.gen_range(0usize..9),
        );
        g.insert_terms(
            pool[s].clone(),
            Term::iri(format!("http://x/p{p}")),
            pool[o].clone(),
        );
    }
    g
}

/// A pattern position: variable (from a pool of 4) or a pool constant.
#[derive(Debug, Clone)]
enum Pos {
    Var(u8),
    Const(usize),
}

fn arb_pos(rng: &mut Prng, var_weight: u32) -> Pos {
    if rng.gen_range(0..(var_weight + 1)) < var_weight {
        Pos::Var(rng.gen_range(0u8..4))
    } else {
        Pos::Const(rng.gen_range(0usize..9))
    }
}

fn arb_bgp(rng: &mut Prng) -> Vec<(Pos, usize, Pos)> {
    let n = rng.gen_range(1usize..4);
    (0..n)
        .map(|_| (arb_pos(rng, 3), rng.gen_range(0usize..4), arb_pos(rng, 2)))
        .collect()
}

fn to_patterns(bgp: &[(Pos, usize, Pos)]) -> Vec<TriplePattern> {
    let pool = term_pool();
    bgp.iter()
        .map(|(s, p, o)| {
            let mk = |pos: &Pos| match pos {
                Pos::Var(v) => VarOrTerm::var(format!("v{v}")),
                Pos::Const(i) => VarOrTerm::Term(pool[*i].clone()),
            };
            TriplePattern::new(mk(s), VarOrTerm::iri(format!("http://x/p{p}")), mk(o))
        })
        .collect()
}

/// Naive reference: evaluate each pattern independently against the whole
/// graph, then nested-loop join all solution sets.
fn reference_bgp(patterns: &[TriplePattern], g: &Graph) -> Vec<Row> {
    let mut solutions = vec![Row::new()];
    for pat in patterns {
        let mut per_pattern: Vec<Row> = Vec::new();
        for t in g.iter() {
            let mut row = Row::new();
            let mut ok = true;
            let bind = |pos: &VarOrTerm, id: fedlake_rdf::TermId, row: &mut Row| {
                let term = g.term(id).unwrap().clone();
                match pos {
                    VarOrTerm::Term(expected) => *expected == term,
                    VarOrTerm::Var(v) => match row.get(v) {
                        Some(existing) => *existing == term,
                        None => {
                            row.bind(v.clone(), term);
                            true
                        }
                    },
                }
            };
            ok &= bind(&pat.s, t.s, &mut row);
            ok &= ok && bind(&pat.p, t.p, &mut row);
            ok &= ok && bind(&pat.o, t.o, &mut row);
            if ok {
                per_pattern.push(row);
            }
        }
        let mut next = Vec::new();
        for a in &solutions {
            for b in &per_pattern {
                if let Some(m) = a.merge(b) {
                    next.push(m);
                }
            }
        }
        solutions = next;
        if solutions.is_empty() {
            break;
        }
    }
    solutions
}

fn multiset(rows: &[Row]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for r in rows {
        *m.entry(r.to_string()).or_insert(0) += 1;
    }
    m
}

/// The optimized BGP evaluation equals the naive reference, as a multiset
/// (SPARQL bag semantics).
#[test]
fn bgp_matches_reference() {
    let mut rng = Prng::seed_from_u64(0x59a1_0001);
    for _ in 0..128 {
        let g = arb_graph(&mut rng);
        let bgp = arb_bgp(&mut rng);
        let patterns = to_patterns(&bgp);
        let optimized = eval_bgp(&patterns, &g, vec![Row::new()]);
        let reference = reference_bgp(&patterns, &g);
        assert_eq!(multiset(&optimized), multiset(&reference));
    }
}

/// DISTINCT is idempotent and never increases cardinality; LIMIT n
/// returns at most n rows and a prefix of the unlimited ordered result.
#[test]
fn modifier_laws() {
    let mut rng = Prng::seed_from_u64(0x59a1_0002);
    for _ in 0..64 {
        let g = arb_graph(&mut rng);
        let limit = rng.gen_range(0usize..10);
        let q = "SELECT ?a ?b WHERE { ?a <http://x/p0> ?b }";
        let plain = evaluate(&parse_query(q).unwrap(), &g).unwrap();
        let distinct = evaluate(
            &parse_query("SELECT DISTINCT ?a ?b WHERE { ?a <http://x/p0> ?b }").unwrap(),
            &g,
        )
        .unwrap();
        assert!(distinct.len() <= plain.len());
        let mut seen = std::collections::BTreeSet::new();
        for r in &distinct {
            assert!(seen.insert(r.clone()), "DISTINCT produced a duplicate");
        }

        let ordered = evaluate(
            &parse_query("SELECT ?a ?b WHERE { ?a <http://x/p0> ?b } ORDER BY ?a ?b").unwrap(),
            &g,
        )
        .unwrap();
        let limited = evaluate(
            &parse_query(&format!(
                "SELECT ?a ?b WHERE {{ ?a <http://x/p0> ?b }} ORDER BY ?a ?b LIMIT {limit}"
            ))
            .unwrap(),
            &g,
        )
        .unwrap();
        assert!(limited.len() <= limit);
        assert_eq!(&ordered[..limited.len()], &limited[..]);
    }
}

/// Projection only ever removes bindings and keeps cardinality.
#[test]
fn projection_law() {
    let mut rng = Prng::seed_from_u64(0x59a1_0003);
    for _ in 0..64 {
        let g = arb_graph(&mut rng);
        let full = evaluate(&parse_query("SELECT * WHERE { ?a ?p ?b }").unwrap(), &g).unwrap();
        let projected =
            evaluate(&parse_query("SELECT ?a WHERE { ?a ?p ?b }").unwrap(), &g).unwrap();
        assert_eq!(full.len(), projected.len());
        for r in &projected {
            assert!(r.len() <= 1);
            assert!(r.vars().all(|v| v == &Var::new("a")));
        }
    }
}

/// A focused regression: ordering of patterns must not matter.
#[test]
fn pattern_order_invariance() {
    let mut g = Graph::new();
    for i in 0..10 {
        let s = Term::iri(format!("http://x/s{i}"));
        g.insert_terms(s.clone(), Term::iri("http://x/p0"), Term::integer(i));
        g.insert_terms(
            s,
            Term::iri("http://x/p1"),
            Term::iri(format!("http://x/s{}", (i + 1) % 10)),
        );
    }
    let forward = parse_query(
        "SELECT * WHERE { ?a <http://x/p1> ?b . ?a <http://x/p0> ?x . ?b <http://x/p0> ?y }",
    )
    .unwrap();
    let backward = parse_query(
        "SELECT * WHERE { ?b <http://x/p0> ?y . ?a <http://x/p0> ?x . ?a <http://x/p1> ?b }",
    )
    .unwrap();
    let f = evaluate(&forward, &g).unwrap();
    let b = evaluate(&backward, &g).unwrap();
    assert_eq!(multiset(&f), multiset(&b));
    assert_eq!(f.len(), 10);
}

/// Seeding eval_bgp with existing bindings must behave like a join with
/// those bindings.
#[test]
fn seeded_bgp_restricts() {
    let mut g = Graph::new();
    for i in 0..5 {
        g.insert_terms(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/p0"),
            Term::integer(i),
        );
    }
    let patterns = vec![TriplePattern::new(
        VarOrTerm::var("s"),
        VarOrTerm::iri("http://x/p0"),
        VarOrTerm::var("v"),
    )];
    let seed = Row::new().with("s", Term::iri("http://x/s3"));
    let rows = eval_bgp(&patterns, &g, vec![seed]);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(&Var::new("v")), Some(&Term::integer(3)));
}
