//! Abstract syntax for the supported SPARQL subset.

use crate::binding::Var;
use crate::expr::Expr;
use fedlake_rdf::Term;
use std::fmt;

/// A subject/predicate/object position: either a variable or a ground term.
#[derive(Debug, Clone, PartialEq)]
pub enum VarOrTerm {
    /// A query variable.
    Var(Var),
    /// A ground RDF term.
    Term(Term),
}

impl VarOrTerm {
    /// Creates a variable position.
    pub fn var(name: impl AsRef<str>) -> Self {
        VarOrTerm::Var(Var::new(name))
    }

    /// Creates an IRI position.
    pub fn iri(v: impl Into<String>) -> Self {
        VarOrTerm::Term(Term::iri(v))
    }

    /// The variable, if this position is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        }
    }

    /// The ground term, if this position is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            VarOrTerm::Var(_) => None,
            VarOrTerm::Term(t) => Some(t),
        }
    }

    /// True for variable positions.
    pub fn is_var(&self) -> bool {
        matches!(self, VarOrTerm::Var(_))
    }
}

impl fmt::Display for VarOrTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarOrTerm::Var(v) => write!(f, "{v}"),
            VarOrTerm::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern in a basic graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub s: VarOrTerm,
    /// Predicate position.
    pub p: VarOrTerm,
    /// Object position.
    pub o: VarOrTerm,
}

impl TriplePattern {
    /// Creates a triple pattern.
    pub fn new(s: VarOrTerm, p: VarOrTerm, o: VarOrTerm) -> Self {
        TriplePattern { s, p, o }
    }

    /// All variables mentioned by the pattern, in s/p/o order.
    pub fn vars(&self) -> Vec<Var> {
        [&self.s, &self.p, &self.o]
            .into_iter()
            .filter_map(|x| x.as_var().cloned())
            .collect()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// A group graph pattern element.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A triple pattern.
    Triple(TriplePattern),
    /// `FILTER (expr)`.
    Filter(Expr),
    /// `OPTIONAL { … }`.
    Optional(GroupGraphPattern),
    /// `{ … } UNION { … }` (n-ary).
    Union(Vec<GroupGraphPattern>),
    /// A nested group `{ … }`.
    Group(GroupGraphPattern),
}

/// A `{ … }` group: a sequence of pattern elements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupGraphPattern {
    /// The elements in syntactic order.
    pub elements: Vec<PatternElement>,
}

impl GroupGraphPattern {
    /// All triple patterns appearing (recursively) in this group.
    pub fn triples(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        self.collect_triples(&mut out);
        out
    }

    fn collect_triples<'a>(&'a self, out: &mut Vec<&'a TriplePattern>) {
        for el in &self.elements {
            match el {
                PatternElement::Triple(t) => out.push(t),
                PatternElement::Optional(g) | PatternElement::Group(g) => g.collect_triples(out),
                PatternElement::Union(gs) => {
                    for g in gs {
                        g.collect_triples(out);
                    }
                }
                PatternElement::Filter(_) => {}
            }
        }
    }

    /// All filters at the top level of this group.
    pub fn filters(&self) -> Vec<&Expr> {
        self.elements
            .iter()
            .filter_map(|el| match el {
                PatternElement::Filter(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// All variables mentioned anywhere in the group.
    pub fn vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = Vec::new();
        for t in self.triples() {
            for v in t.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending (the default).
    Asc,
    /// Descending.
    Desc,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The variable to sort by.
    pub var: Var,
    /// Sort direction.
    pub order: Order,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Projected variables; empty means `SELECT *`.
    pub projection: Vec<Var>,
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// The `WHERE` clause.
    pub pattern: GroupGraphPattern,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

impl SelectQuery {
    /// The effective projection: declared variables, or every variable in
    /// the pattern for `SELECT *`.
    pub fn effective_projection(&self) -> Vec<Var> {
        if self.projection.is_empty() {
            self.pattern.vars()
        } else {
            self.projection.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_pattern_vars() {
        let t = TriplePattern::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://p"),
            VarOrTerm::var("o"),
        );
        let vars = t.vars();
        assert_eq!(vars, vec![Var::new("s"), Var::new("o")]);
    }

    #[test]
    fn group_vars_deduplicated() {
        let mut g = GroupGraphPattern::default();
        g.elements.push(PatternElement::Triple(TriplePattern::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://p"),
            VarOrTerm::var("o"),
        )));
        g.elements.push(PatternElement::Triple(TriplePattern::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://q"),
            VarOrTerm::var("o2"),
        )));
        assert_eq!(g.vars().len(), 3);
    }

    #[test]
    fn display_triple_pattern() {
        let t = TriplePattern::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://p"),
            VarOrTerm::Term(Term::literal("v")),
        );
        assert_eq!(t.to_string(), "?s <http://p> \"v\" .");
    }
}
