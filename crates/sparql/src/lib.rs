//! # fedlake-sparql
//!
//! A SPARQL 1.0/1.1 subset sufficient for federated query processing over a
//! Semantic Data Lake: `SELECT` queries with basic graph patterns,
//! `FILTER`, `OPTIONAL`, `UNION`, `DISTINCT`, `ORDER BY`, `LIMIT`/`OFFSET`
//! and `PREFIX` declarations.
//!
//! The crate provides:
//!
//! * [`parser`] — text → [`ast::SelectQuery`];
//! * [`algebra`] — the logical algebra the federated engine plans over;
//! * [`eval`] — a complete local evaluator against a
//!   [`fedlake_rdf::Graph`], used both by the SPARQL-endpoint wrapper and
//!   as the ground-truth oracle in tests;
//! * [`binding`] — solution mappings ([`binding::Row`]) shared by every
//!   operator in the workspace.
//!
//! ## Example
//!
//! ```
//! use fedlake_rdf::{Graph, Term};
//! use fedlake_sparql::{eval::evaluate, parser::parse_query};
//!
//! let mut g = Graph::new();
//! g.insert_terms(
//!     Term::iri("http://ex/alice"),
//!     Term::iri("http://ex/name"),
//!     Term::literal("Alice"),
//! );
//! let q = parse_query("SELECT ?n WHERE { ?s <http://ex/name> ?n }").unwrap();
//! let rows = evaluate(&q, &g).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod algebra;
pub mod ast;
pub mod binding;
pub mod error;
pub mod eval;
pub mod expr;
pub mod parser;
pub mod token;

pub use ast::{SelectQuery, TriplePattern, VarOrTerm};
pub use binding::{decode_row, encode_row, Row, RowSchema, Rows, SlotRow, Var};
pub use error::SparqlError;
