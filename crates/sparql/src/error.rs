//! Error types for SPARQL parsing and evaluation.

use std::fmt;

/// Errors raised while lexing, parsing or evaluating a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical error with byte position.
    Lex { pos: usize, message: String },
    /// Parse error with a human-readable description.
    Parse(String),
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// Evaluation error (type errors are normally absorbed into unbound
    /// results per SPARQL semantics; this covers engine-level failures).
    Eval(String),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { pos, message } => {
                write!(f, "lexical error at byte {pos}: {message}")
            }
            SparqlError::Parse(m) => write!(f, "parse error: {m}"),
            SparqlError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            SparqlError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SparqlError::Parse("x".into()).to_string().contains("parse"));
        assert!(SparqlError::UnknownPrefix("foaf".into())
            .to_string()
            .contains("foaf"));
        assert!(SparqlError::Lex { pos: 5, message: "bad".into() }
            .to_string()
            .contains("byte 5"));
        assert!(SparqlError::Eval("boom".into()).to_string().contains("boom"));
    }
}
