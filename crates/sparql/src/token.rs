//! The SPARQL tokenizer.

use crate::error::SparqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare keyword or prefixed-name component, e.g. `SELECT`, `foaf:name`.
    Word(String),
    /// `?name` or `$name`.
    Variable(String),
    /// `<http://…>`.
    Iri(String),
    /// `_:label`.
    Blank(String),
    /// A string literal with optional `@lang` or `^^<datatype>`.
    Literal {
        lexical: String,
        lang: Option<String>,
        datatype: Option<String>,
    },
    /// An integer literal.
    Integer(i64),
    /// A decimal/double literal.
    Double(f64),
    /// Punctuation and operators.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl Token {
    /// True when this is `Word` matching `kw` case-insensitively.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SPARQL query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SparqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '?' | '$' => {
                let start = i + 1;
                i = start;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                if i == start {
                    return Err(SparqlError::Lex { pos: start, message: "empty variable name".into() });
                }
                tokens.push(Token::Variable(input[start..i].to_string()));
            }
            '<' => {
                // Could be an IRI or the `<`/`<=` operator. IRIs never
                // contain spaces and close with `>`.
                let close = input[i + 1..].find(['>', ' ', '\t', '\n']);
                match close {
                    Some(off) if bytes[i + 1 + off] == b'>' => {
                        tokens.push(Token::Iri(input[i + 1..i + 1 + off].to_string()));
                        i += off + 2;
                    }
                    _ => {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                            tokens.push(Token::Punct("<="));
                            i += 2;
                        } else {
                            tokens.push(Token::Punct("<"));
                            i += 1;
                        }
                    }
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut lexical = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SparqlError::Lex { pos: i, message: "unterminated string".into() });
                    }
                    let ch = input[i..].chars().next().expect("in-bounds index");
                    i += ch.len_utf8();
                    if ch == quote {
                        break;
                    }
                    if ch == '\\' {
                        let esc = input[i..]
                            .chars()
                            .next()
                            .ok_or(SparqlError::Lex { pos: i, message: "truncated escape".into() })?;
                        i += esc.len_utf8();
                        match esc {
                            'n' => lexical.push('\n'),
                            't' => lexical.push('\t'),
                            'r' => lexical.push('\r'),
                            '"' => lexical.push('"'),
                            '\'' => lexical.push('\''),
                            '\\' => lexical.push('\\'),
                            other => {
                                return Err(SparqlError::Lex {
                                    pos: i,
                                    message: format!("bad escape \\{other}"),
                                })
                            }
                        }
                    } else {
                        lexical.push(ch);
                    }
                }
                // Optional language tag or datatype.
                let mut lang = None;
                let mut datatype = None;
                if i < bytes.len() && bytes[i] == b'@' {
                    let start = i + 1;
                    i = start;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'-')
                    {
                        i += 1;
                    }
                    lang = Some(input[start..i].to_string());
                } else if input[i..].starts_with("^^") {
                    i += 2;
                    if i < bytes.len() && bytes[i] == b'<' {
                        let close = input[i + 1..].find('>').ok_or(SparqlError::Lex {
                            pos: i,
                            message: "unterminated datatype IRI".into(),
                        })?;
                        datatype = Some(input[i + 1..i + 1 + close].to_string());
                        i += close + 2;
                    } else {
                        // Prefixed datatype name, e.g. xsd:integer.
                        let start = i;
                        while i < bytes.len() && (is_name_char(bytes[i]) || bytes[i] == b':') {
                            i += 1;
                        }
                        datatype = Some(input[start..i].to_string());
                    }
                }
                tokens.push(Token::Literal { lexical, lang, datatype });
            }
            '_' if input[i..].starts_with("_:") => {
                let start = i + 2;
                i = start;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token::Blank(input[start..i].to_string()));
            }
            '0'..='9' => {
                let start = i;
                let mut is_double = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E')
                {
                    if bytes[i] == b'.' {
                        // A trailing '.' terminates a triple; only treat it
                        // as a decimal point when followed by a digit.
                        if i + 1 >= bytes.len() || !(bytes[i + 1] as char).is_ascii_digit() {
                            break;
                        }
                        is_double = true;
                    }
                    if bytes[i] == b'e' || bytes[i] == b'E' {
                        is_double = true;
                        if i + 1 < bytes.len() && (bytes[i + 1] == b'+' || bytes[i + 1] == b'-') {
                            i += 1;
                        }
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_double {
                    let v = text.parse().map_err(|_| SparqlError::Lex {
                        pos: start,
                        message: format!("bad double {text:?}"),
                    })?;
                    tokens.push(Token::Double(v));
                } else {
                    let v = text.parse().map_err(|_| SparqlError::Lex {
                        pos: start,
                        message: format!("bad integer {text:?}"),
                    })?;
                    tokens.push(Token::Integer(v));
                }
            }
            '{' | '}' | '(' | ')' | '.' | ';' | ',' | '*' | '/' | '+' => {
                tokens.push(Token::Punct(match c {
                    '{' => "{",
                    '}' => "}",
                    '(' => "(",
                    ')' => ")",
                    '.' => ".",
                    ';' => ";",
                    ',' => ",",
                    '*' => "*",
                    '/' => "/",
                    _ => "+",
                }));
                i += 1;
            }
            '-' => {
                // Negative number literal or minus operator.
                if i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit() {
                    // Re-lex as number with sign.
                    let start = i;
                    i += 1;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.')
                    {
                        if bytes[i] == b'.'
                            && (i + 1 >= bytes.len() || !(bytes[i + 1] as char).is_ascii_digit())
                        {
                            break;
                        }
                        i += 1;
                    }
                    let text = &input[start..i];
                    if text.contains('.') {
                        tokens.push(Token::Double(text.parse().map_err(|_| SparqlError::Lex {
                            pos: start,
                            message: format!("bad double {text:?}"),
                        })?));
                    } else {
                        tokens.push(Token::Integer(text.parse().map_err(|_| SparqlError::Lex {
                            pos: start,
                            message: format!("bad integer {text:?}"),
                        })?));
                    }
                } else {
                    tokens.push(Token::Punct("-"));
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Punct("="));
                i += 1;
            }
            '!' => {
                if input[i..].starts_with("!=") {
                    tokens.push(Token::Punct("!="));
                    i += 2;
                } else {
                    tokens.push(Token::Punct("!"));
                    i += 1;
                }
            }
            '>' => {
                if input[i..].starts_with(">=") {
                    tokens.push(Token::Punct(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Punct(">"));
                    i += 1;
                }
            }
            '&' => {
                if input[i..].starts_with("&&") {
                    tokens.push(Token::Punct("&&"));
                    i += 2;
                } else {
                    return Err(SparqlError::Lex { pos: i, message: "lone '&'".into() });
                }
            }
            '|' => {
                if input[i..].starts_with("||") {
                    tokens.push(Token::Punct("||"));
                    i += 2;
                } else {
                    return Err(SparqlError::Lex { pos: i, message: "lone '|'".into() });
                }
            }
            _ if c.is_ascii_alphabetic() || c == ':' => {
                let start = i;
                while i < bytes.len() && (is_name_char(bytes[i]) || bytes[i] == b':') {
                    i += 1;
                }
                tokens.push(Token::Word(input[start..i].to_string()));
            }
            other => {
                return Err(SparqlError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn is_name_char(b: u8) -> bool {
    let c = b as char;
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_select() {
        let toks = tokenize("SELECT ?x WHERE { ?x a <http://x/C> }").unwrap();
        assert!(toks[0].is_keyword("select"));
        assert_eq!(toks[1], Token::Variable("x".into()));
        assert!(toks[2].is_keyword("WHERE"));
        assert_eq!(toks[3], Token::Punct("{"));
        assert_eq!(toks[5], Token::Word("a".into()));
        assert_eq!(toks[6], Token::Iri("http://x/C".into()));
    }

    #[test]
    fn tokenize_literals() {
        let toks = tokenize(r#""plain" "tag"@en "7"^^<http://dt> 42 3.5 -2"#).unwrap();
        assert_eq!(
            toks[0],
            Token::Literal { lexical: "plain".into(), lang: None, datatype: None }
        );
        assert_eq!(
            toks[1],
            Token::Literal { lexical: "tag".into(), lang: Some("en".into()), datatype: None }
        );
        assert_eq!(
            toks[2],
            Token::Literal { lexical: "7".into(), lang: None, datatype: Some("http://dt".into()) }
        );
        assert_eq!(toks[3], Token::Integer(42));
        assert_eq!(toks[4], Token::Double(3.5));
        assert_eq!(toks[5], Token::Integer(-2));
    }

    #[test]
    fn tokenize_operators() {
        let toks = tokenize("FILTER(?x >= 3 && ?y != \"a\" || !BOUND(?z))").unwrap();
        assert!(toks.contains(&Token::Punct(">=")));
        assert!(toks.contains(&Token::Punct("&&")));
        assert!(toks.contains(&Token::Punct("!=")));
        assert!(toks.contains(&Token::Punct("||")));
        assert!(toks.contains(&Token::Punct("!")));
    }

    #[test]
    fn less_than_vs_iri() {
        let toks = tokenize("FILTER(?x < 3)").unwrap();
        assert!(toks.contains(&Token::Punct("<")));
        let toks = tokenize("FILTER(?x <= 3)").unwrap();
        assert!(toks.contains(&Token::Punct("<=")));
    }

    #[test]
    fn prefixed_names() {
        let toks = tokenize("foaf:name rdf:type :local").unwrap();
        assert_eq!(toks[0], Token::Word("foaf:name".into()));
        assert_eq!(toks[1], Token::Word("rdf:type".into()));
        assert_eq!(toks[2], Token::Word(":local".into()));
    }

    #[test]
    fn comments_ignored() {
        let toks = tokenize("SELECT # everything\n?x").unwrap();
        assert_eq!(toks.len(), 3); // SELECT, ?x, EOF
    }

    #[test]
    fn dot_terminates_integer() {
        // `?x <p> 5 .` — the dot is punctuation, not a decimal point.
        let toks = tokenize("5 .").unwrap();
        assert_eq!(toks[0], Token::Integer(5));
        assert_eq!(toks[1], Token::Punct("."));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn blank_node_token() {
        let toks = tokenize("_:b1 <http://p> _:b2 .").unwrap();
        assert_eq!(toks[0], Token::Blank("b1".into()));
        assert_eq!(toks[2], Token::Blank("b2".into()));
    }
}
