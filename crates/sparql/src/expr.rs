//! The SPARQL expression language used in `FILTER` clauses, and its
//! evaluation over solution mappings.
//!
//! Evaluation follows SPARQL's three-valued semantics loosely: a type error
//! (e.g. comparing a string to an IRI with `<`) yields `Err`, which a
//! `FILTER` treats as `false`.

use crate::binding::{Row, RowSchema, SlotRow, Var};
use fedlake_rdf::{Dictionary, Literal, Term};
use std::cmp::Ordering;
use std::fmt;

/// How the evaluator resolves a variable reference. The same expression
/// tree evaluates over classic [`Row`]s and over dictionary-encoded
/// [`SlotRow`]s; only the lookup differs, and slot evaluation touches the
/// dictionary lazily — exactly when an expression needs a term's value.
trait VarSource {
    fn term(&self, v: &Var) -> Option<Term>;
    fn is_bound(&self, v: &Var) -> bool;
}

struct RowSource<'a>(&'a Row);

impl VarSource for RowSource<'_> {
    fn term(&self, v: &Var) -> Option<Term> {
        self.0.get(v).cloned()
    }

    fn is_bound(&self, v: &Var) -> bool {
        self.0.is_bound(v)
    }
}

struct SlotSource<'a> {
    row: &'a SlotRow,
    schema: &'a RowSchema,
    dict: &'a Dictionary,
}

impl VarSource for SlotSource<'_> {
    fn term(&self, v: &Var) -> Option<Term> {
        let slot = self.schema.slot(v)?;
        let id = self.row.get(slot)?;
        self.dict.term(id).cloned()
    }

    fn is_bound(&self, v: &Var) -> bool {
        self.schema.slot(v).is_some_and(|s| self.row.is_bound(s))
    }
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// A filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(Var),
    /// A constant term.
    Const(Term),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `BOUND(?v)`.
    Bound(Var),
    /// `REGEX(expr, pattern)` — substring/anchor subset, no full regex
    /// engine (supports `^` and `$` anchors and literal text).
    Regex(Box<Expr>, String),
    /// `CONTAINS(expr, literal)`.
    Contains(Box<Expr>, Box<Expr>),
    /// `STRSTARTS(expr, literal)`.
    StrStarts(Box<Expr>, Box<Expr>),
    /// `STRENDS(expr, literal)`.
    StrEnds(Box<Expr>, Box<Expr>),
    /// `STR(expr)` — the string form of a term.
    Str(Box<Expr>),
    /// `LANG(expr)`.
    Lang(Box<Expr>),
}

/// A value produced during expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An RDF term.
    Term(Term),
    /// A boolean.
    Bool(bool),
    /// A numeric value.
    Num(f64),
    /// A plain string (from `STR`/`LANG`).
    Str(String),
}

impl Value {
    /// SPARQL effective boolean value.
    pub fn ebv(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Num(n) => Ok(*n != 0.0),
            Value::Str(s) => Ok(!s.is_empty()),
            Value::Term(Term::Literal(l)) => {
                if let Some(n) = numeric_value(l) {
                    Ok(n != 0.0)
                } else if l.datatype.as_deref() == Some(fedlake_rdf::vocab::xsd::BOOLEAN) {
                    Ok(l.lexical == "true" || l.lexical == "1")
                } else {
                    Ok(!l.lexical.is_empty())
                }
            }
            Value::Term(_) => Err("EBV of non-literal".into()),
        }
    }
}

fn numeric_value(l: &Literal) -> Option<f64> {
    if l.is_numeric() {
        l.as_double()
    } else {
        None
    }
}

fn as_num(v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(*n),
        Value::Term(Term::Literal(l)) => numeric_value(l),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::Term(Term::Literal(l)) => Some(l.lexical.clone()),
        Value::Term(Term::Iri(i)) => Some(i.clone()),
        _ => None,
    }
}

/// Compares two values per SPARQL operator semantics.
fn compare(a: &Value, b: &Value) -> Result<Ordering, String> {
    if let (Some(x), Some(y)) = (as_num(a), as_num(b)) {
        return x.partial_cmp(&y).ok_or_else(|| "NaN comparison".into());
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => Ok(x.cmp(y)),
        (Value::Term(Term::Iri(x)), Value::Term(Term::Iri(y))) => Ok(x.cmp(y)),
        (Value::Term(Term::Blank(x)), Value::Term(Term::Blank(y))) => Ok(x.cmp(y)),
        _ => {
            let x = as_str(a).ok_or("uncomparable operand")?;
            let y = as_str(b).ok_or("uncomparable operand")?;
            Ok(x.cmp(&y))
        }
    }
}

impl Expr {
    /// Evaluates the expression against a solution mapping.
    pub fn eval(&self, row: &Row) -> Result<Value, String> {
        self.eval_with(&RowSource(row))
    }

    /// Evaluates against a slot row, resolving ids through the query
    /// dictionary only where a term's value is actually needed.
    pub fn eval_slots(
        &self,
        row: &SlotRow,
        schema: &RowSchema,
        dict: &Dictionary,
    ) -> Result<Value, String> {
        self.eval_with(&SlotSource { row, schema, dict })
    }

    fn eval_with<S: VarSource>(&self, src: &S) -> Result<Value, String> {
        match self {
            Expr::Var(v) => src
                .term(v)
                .map(Value::Term)
                .ok_or_else(|| format!("unbound variable {v}")),
            Expr::Const(t) => Ok(Value::Term(t.clone())),
            Expr::Cmp(a, op, b) => {
                let va = a.eval_with(src)?;
                let vb = b.eval_with(src)?;
                // `=`/`!=` on non-numeric terms is term equality.
                if matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    if let (Value::Term(x), Value::Term(y)) = (&va, &vb) {
                        if as_num(&va).is_none() || as_num(&vb).is_none() {
                            let eq = x == y;
                            return Ok(Value::Bool(if *op == CmpOp::Eq { eq } else { !eq }));
                        }
                    }
                }
                Ok(Value::Bool(op.test(compare(&va, &vb)?)))
            }
            Expr::Arith(a, op, b) => {
                let x = as_num(&a.eval_with(src)?).ok_or("non-numeric operand")?;
                let y = as_num(&b.eval_with(src)?).ok_or("non-numeric operand")?;
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return Err("division by zero".into());
                        }
                        x / y
                    }
                };
                Ok(Value::Num(r))
            }
            Expr::And(a, b) => {
                // SPARQL logical-and: false dominates errors.
                let va = a.eval_with(src).and_then(|v| v.ebv());
                let vb = b.eval_with(src).and_then(|v| v.ebv());
                match (va, vb) {
                    (Ok(false), _) | (_, Ok(false)) => Ok(Value::Bool(false)),
                    (Ok(true), Ok(true)) => Ok(Value::Bool(true)),
                    (Err(e), _) | (_, Err(e)) => Err(e),
                }
            }
            Expr::Or(a, b) => {
                // SPARQL logical-or: true dominates errors.
                let va = a.eval_with(src).and_then(|v| v.ebv());
                let vb = b.eval_with(src).and_then(|v| v.ebv());
                match (va, vb) {
                    (Ok(true), _) | (_, Ok(true)) => Ok(Value::Bool(true)),
                    (Ok(false), Ok(false)) => Ok(Value::Bool(false)),
                    (Err(e), _) | (_, Err(e)) => Err(e),
                }
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval_with(src)?.ebv()?)),
            Expr::Bound(v) => Ok(Value::Bool(src.is_bound(v))),
            Expr::Regex(e, pattern) => {
                let s = as_str(&e.eval_with(src)?).ok_or("REGEX on non-string")?;
                Ok(Value::Bool(simple_regex_match(&s, pattern)))
            }
            Expr::Contains(a, b) => {
                let s = as_str(&a.eval_with(src)?).ok_or("CONTAINS on non-string")?;
                let n = as_str(&b.eval_with(src)?).ok_or("CONTAINS needle non-string")?;
                Ok(Value::Bool(s.contains(&n)))
            }
            Expr::StrStarts(a, b) => {
                let s = as_str(&a.eval_with(src)?).ok_or("STRSTARTS on non-string")?;
                let n = as_str(&b.eval_with(src)?).ok_or("STRSTARTS needle non-string")?;
                Ok(Value::Bool(s.starts_with(&n)))
            }
            Expr::StrEnds(a, b) => {
                let s = as_str(&a.eval_with(src)?).ok_or("STRENDS on non-string")?;
                let n = as_str(&b.eval_with(src)?).ok_or("STRENDS needle non-string")?;
                Ok(Value::Bool(s.ends_with(&n)))
            }
            Expr::Str(e) => {
                let v = e.eval_with(src)?;
                Ok(Value::Str(as_str(&v).ok_or("STR of boolean")?))
            }
            Expr::Lang(e) => match e.eval_with(src)? {
                Value::Term(Term::Literal(l)) => Ok(Value::Str(l.lang.unwrap_or_default())),
                _ => Err("LANG of non-literal".into()),
            },
        }
    }

    /// Evaluates the expression as a filter condition: errors count as
    /// `false`, per SPARQL semantics.
    pub fn test(&self, row: &Row) -> bool {
        self.eval(row).and_then(|v| v.ebv()).unwrap_or(false)
    }

    /// [`Expr::test`] over a slot row.
    pub fn test_slots(&self, row: &SlotRow, schema: &RowSchema, dict: &Dictionary) -> bool {
        self.eval_slots(row, schema, dict)
            .and_then(|v| v.ebv())
            .unwrap_or(false)
    }

    /// All variables mentioned by the expression.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Var(v) | Expr::Bound(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Cmp(a, _, b)
            | Expr::Arith(a, _, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Contains(a, b)
            | Expr::StrStarts(a, b)
            | Expr::StrEnds(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(e) | Expr::Regex(e, _) | Expr::Str(e) | Expr::Lang(e) => {
                e.collect_vars(out)
            }
        }
    }

    /// True when this expression is a *simple instantiation* of a single
    /// variable — a pattern like `?v = const`, `CONTAINS(?v, "x")`,
    /// `STRSTARTS(STR(?v), "x")` or a comparison against a constant. These
    /// are the filters Heuristic 2 of the paper reasons about: they can be
    /// pushed into a source query as a WHERE condition on one column.
    pub fn is_simple_instantiation(&self) -> bool {
        fn is_var(e: &Expr) -> bool {
            matches!(e, Expr::Var(_)) || matches!(e, Expr::Str(inner) if is_var(inner))
        }
        fn is_const(e: &Expr) -> bool {
            matches!(e, Expr::Const(_))
        }
        match self {
            Expr::Cmp(a, _, b) => (is_var(a) && is_const(b)) || (is_const(a) && is_var(b)),
            Expr::Regex(e, _) => is_var(e),
            Expr::Contains(a, b) | Expr::StrStarts(a, b) | Expr::StrEnds(a, b) => {
                is_var(a) && is_const(b)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(t) => write!(f, "{t}"),
            Expr::Cmp(a, op, b) => write!(f, "({a} {op} {b})"),
            Expr::Arith(a, op, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::Bound(v) => write!(f, "BOUND({v})"),
            Expr::Regex(e, p) => write!(f, "REGEX({e}, \"{p}\")"),
            Expr::Contains(a, b) => write!(f, "CONTAINS({a}, {b})"),
            Expr::StrStarts(a, b) => write!(f, "STRSTARTS({a}, {b})"),
            Expr::StrEnds(a, b) => write!(f, "STRENDS({a}, {b})"),
            Expr::Str(e) => write!(f, "STR({e})"),
            Expr::Lang(e) => write!(f, "LANG({e})"),
        }
    }
}

/// A minimal "regex" matcher supporting `^`/`$` anchors around literal text.
/// This covers the instantiation patterns used by the paper's workload
/// without pulling in a regex engine.
pub fn simple_regex_match(s: &str, pattern: &str) -> bool {
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$') && pattern.len() > 1;
    let body = &pattern[usize::from(starts)..pattern.len() - usize::from(ends)];
    match (starts, ends) {
        (true, true) => s == body,
        (true, false) => s.starts_with(body),
        (false, true) => s.ends_with(body),
        (false, false) => s.contains(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new()
            .with("n", Term::integer(5))
            .with("s", Term::literal("Homo sapiens"))
            .with("i", Term::iri("http://x/a"))
    }

    fn var(n: &str) -> Box<Expr> {
        Box::new(Expr::Var(Var::new(n)))
    }

    fn int(v: i64) -> Box<Expr> {
        Box::new(Expr::Const(Term::integer(v)))
    }

    fn s(v: &str) -> Box<Expr> {
        Box::new(Expr::Const(Term::literal(v)))
    }

    #[test]
    fn numeric_comparisons() {
        assert!(Expr::Cmp(var("n"), CmpOp::Eq, int(5)).test(&row()));
        assert!(Expr::Cmp(var("n"), CmpOp::Lt, int(6)).test(&row()));
        assert!(Expr::Cmp(var("n"), CmpOp::Ge, int(5)).test(&row()));
        assert!(!Expr::Cmp(var("n"), CmpOp::Gt, int(5)).test(&row()));
    }

    #[test]
    fn string_comparisons() {
        assert!(Expr::Cmp(var("s"), CmpOp::Eq, s("Homo sapiens")).test(&row()));
        assert!(Expr::Cmp(var("s"), CmpOp::Ne, s("Mus musculus")).test(&row()));
    }

    #[test]
    fn iri_equality() {
        let e = Expr::Cmp(
            var("i"),
            CmpOp::Eq,
            Box::new(Expr::Const(Term::iri("http://x/a"))),
        );
        assert!(e.test(&row()));
    }

    #[test]
    fn logical_operators() {
        let t = Expr::Cmp(var("n"), CmpOp::Eq, int(5));
        let f = Expr::Cmp(var("n"), CmpOp::Eq, int(6));
        assert!(Expr::And(Box::new(t.clone()), Box::new(t.clone())).test(&row()));
        assert!(!Expr::And(Box::new(t.clone()), Box::new(f.clone())).test(&row()));
        assert!(Expr::Or(Box::new(f.clone()), Box::new(t.clone())).test(&row()));
        assert!(!Expr::Or(Box::new(f.clone()), Box::new(f.clone())).test(&row()));
        assert!(Expr::Not(Box::new(f)).test(&row()));
        assert!(!Expr::Not(Box::new(t)).test(&row()));
    }

    #[test]
    fn error_false_dominance() {
        // ?missing is unbound → error; AND(false, error) = false,
        // OR(true, error) = true.
        let err = Expr::Cmp(var("missing"), CmpOp::Eq, int(1));
        let f = Expr::Cmp(var("n"), CmpOp::Eq, int(6));
        let t = Expr::Cmp(var("n"), CmpOp::Eq, int(5));
        assert!(!Expr::And(Box::new(f), Box::new(err.clone())).test(&row()));
        assert!(Expr::Or(Box::new(t), Box::new(err.clone())).test(&row()));
        // Bare error filters to false.
        assert!(!err.test(&row()));
    }

    #[test]
    fn string_functions() {
        assert!(Expr::Contains(var("s"), s("sapiens")).test(&row()));
        assert!(Expr::StrStarts(var("s"), s("Homo")).test(&row()));
        assert!(Expr::StrEnds(var("s"), s("sapiens")).test(&row()));
        assert!(!Expr::Contains(var("s"), s("musculus")).test(&row()));
    }

    #[test]
    fn regex_subset() {
        assert!(simple_regex_match("Homo sapiens", "sapiens"));
        assert!(simple_regex_match("Homo sapiens", "^Homo"));
        assert!(simple_regex_match("Homo sapiens", "sapiens$"));
        assert!(simple_regex_match("Homo sapiens", "^Homo sapiens$"));
        assert!(!simple_regex_match("Homo sapiens", "^sapiens"));
        assert!(Expr::Regex(var("s"), "^Homo".into()).test(&row()));
    }

    #[test]
    fn str_and_lang() {
        let r = Row::new().with("l", Term::Literal(Literal::lang_tagged("chat", "en")));
        assert_eq!(
            Expr::Lang(var("l")).eval(&r).unwrap(),
            Value::Str("en".into())
        );
        assert_eq!(
            Expr::Str(var("l")).eval(&r).unwrap(),
            Value::Str("chat".into())
        );
        // STR of an IRI yields the IRI text.
        assert_eq!(
            Expr::Str(var("i")).eval(&row()).unwrap(),
            Value::Str("http://x/a".into())
        );
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Cmp(
            Box::new(Expr::Arith(var("n"), ArithOp::Add, int(3))),
            CmpOp::Eq,
            int(8),
        );
        assert!(e.test(&row()));
        let div0 = Expr::Arith(var("n"), ArithOp::Div, int(0));
        assert!(div0.eval(&row()).is_err());
    }

    #[test]
    fn bound() {
        assert!(Expr::Bound(Var::new("n")).test(&row()));
        assert!(!Expr::Bound(Var::new("zz")).test(&row()));
    }

    #[test]
    fn simple_instantiation_detection() {
        assert!(Expr::Cmp(var("s"), CmpOp::Eq, s("x")).is_simple_instantiation());
        assert!(Expr::Cmp(s("x"), CmpOp::Eq, var("s")).is_simple_instantiation());
        assert!(Expr::Contains(var("s"), s("x")).is_simple_instantiation());
        assert!(Expr::Regex(var("s"), "x".into()).is_simple_instantiation());
        assert!(
            Expr::Cmp(Box::new(Expr::Str(var("s"))), CmpOp::Eq, s("x"))
                .is_simple_instantiation()
        );
        // Joins of two variables are not instantiations.
        assert!(!Expr::Cmp(var("a"), CmpOp::Eq, var("b")).is_simple_instantiation());
        assert!(!Expr::Bound(Var::new("a")).is_simple_instantiation());
    }

    #[test]
    fn slot_eval_matches_row_eval() {
        use crate::binding::{encode_row, RowSchema};
        let r = row();
        let schema = RowSchema::new(["n", "s", "i", "missing"].map(Var::new));
        let mut dict = Dictionary::new();
        let slots = encode_row(&r, &schema, &mut dict);
        let exprs = [
            Expr::Cmp(var("n"), CmpOp::Eq, int(5)),
            Expr::Cmp(var("n"), CmpOp::Lt, int(6)),
            // Numerically equal but lexically distinct: ids differ, yet
            // `=` must still hold — the id path may not shortcut this.
            Expr::Cmp(var("n"), CmpOp::Eq, Box::new(Expr::Const(Term::double(5.0)))),
            Expr::Cmp(var("s"), CmpOp::Eq, s("Homo sapiens")),
            Expr::Contains(var("s"), s("sapiens")),
            Expr::Bound(Var::new("n")),
            Expr::Bound(Var::new("missing")),
            Expr::Cmp(var("missing"), CmpOp::Eq, int(1)),
            Expr::Regex(var("s"), "^Homo".into()),
        ];
        for e in exprs {
            assert_eq!(
                e.test(&r),
                e.test_slots(&slots, &schema, &dict),
                "expr {e} disagrees between representations"
            );
        }
    }

    #[test]
    fn expr_vars() {
        let e = Expr::And(
            Box::new(Expr::Cmp(var("a"), CmpOp::Eq, var("b"))),
            Box::new(Expr::Bound(Var::new("a"))),
        );
        assert_eq!(e.vars().len(), 2);
    }

    use fedlake_rdf::Literal;
}
