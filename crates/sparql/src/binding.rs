//! Solution mappings.
//!
//! A [`Row`] maps variables to RDF terms. Rows are the currency of every
//! operator in the workspace: the local SPARQL evaluator, the federated
//! engine's adaptive operators and the wrappers all produce and consume
//! them. Terms are stored by value (not dictionary ids) because rows cross
//! source boundaries where dictionaries differ.

use fedlake_rdf::Term;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A query variable (without the leading `?`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub Arc<str>);

impl Var {
    /// Creates a variable from its name (no leading `?`).
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable name without the `?` sigil.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A single solution mapping: variable → term.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    slots: BTreeMap<Var, Term>,
}

impl Row {
    /// An empty solution mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `var` to `term`, replacing any existing binding.
    pub fn bind(&mut self, var: Var, term: Term) {
        self.slots.insert(var, term);
    }

    /// Builder-style [`Row::bind`].
    pub fn with(mut self, var: impl Into<Var>, term: Term) -> Self {
        self.bind(var.into(), term);
        self
    }

    /// The term bound to `var`, if any.
    pub fn get(&self, var: &Var) -> Option<&Term> {
        self.slots.get(var)
    }

    /// True when `var` is bound.
    pub fn is_bound(&self, var: &Var) -> bool {
        self.slots.contains_key(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.slots.iter()
    }

    /// The set of bound variables.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.slots.keys()
    }

    /// Two rows are *compatible* when they agree on every shared variable.
    pub fn compatible(&self, other: &Row) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .iter()
            .all(|(v, t)| large.get(v).is_none_or(|u| u == t))
    }

    /// Merges two compatible rows; `None` when they conflict.
    pub fn merge(&self, other: &Row) -> Option<Row> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for (v, t) in other.iter() {
            out.slots.entry(v.clone()).or_insert_with(|| t.clone());
        }
        Some(out)
    }

    /// Restricts the row to `vars` (projection).
    pub fn project(&self, vars: &[Var]) -> Row {
        let mut out = Row::new();
        for v in vars {
            if let Some(t) = self.get(v) {
                out.bind(v.clone(), t.clone());
            }
        }
        out
    }
}

impl FromIterator<(Var, Term)> for Row {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Row { slots: iter.into_iter().collect() }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}={t}")?;
        }
        write!(f, "}}")
    }
}

/// A multiset of solution mappings.
pub type Rows = Vec<Row>;

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &str) -> Term {
        Term::iri(format!("http://x/{v}"))
    }

    #[test]
    fn bind_and_get() {
        let r = Row::new().with("x", t("a"));
        assert_eq!(r.get(&Var::new("x")), Some(&t("a")));
        assert!(r.get(&Var::new("y")).is_none());
        assert!(r.is_bound(&Var::new("x")));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn compatible_when_disjoint() {
        let a = Row::new().with("x", t("a"));
        let b = Row::new().with("y", t("b"));
        assert!(a.compatible(&b));
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn compatible_when_agreeing() {
        let a = Row::new().with("x", t("a")).with("y", t("b"));
        let b = Row::new().with("x", t("a")).with("z", t("c"));
        assert!(a.compatible(&b));
        assert_eq!(a.merge(&b).unwrap().len(), 3);
    }

    #[test]
    fn incompatible_when_conflicting() {
        let a = Row::new().with("x", t("a"));
        let b = Row::new().with("x", t("b"));
        assert!(!a.compatible(&b));
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn projection_keeps_only_requested() {
        let r = Row::new().with("x", t("a")).with("y", t("b"));
        let p = r.project(&[Var::new("y"), Var::new("z")]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&Var::new("y")), Some(&t("b")));
    }

    #[test]
    fn display_is_readable() {
        let r = Row::new().with("x", t("a"));
        assert_eq!(r.to_string(), "{?x=<http://x/a>}");
    }

    #[test]
    fn empty_row_compatible_with_all() {
        let a = Row::new();
        let b = Row::new().with("x", t("a"));
        assert!(a.compatible(&b));
        assert_eq!(a.merge(&b).unwrap(), b);
    }
}
