//! Solution mappings.
//!
//! A [`Row`] maps variables to RDF terms by value; it is the external
//! currency at API boundaries (final results, the local SPARQL evaluator).
//! Inside the federated engine, solution mappings travel as [`SlotRow`]s:
//! fixed-width arrays of [`TermId`]s laid out by a per-query [`RowSchema`]
//! and interned in a query-scoped dictionary shared across all sources.
//! Operators then hash and compare `u32` ids instead of strings, and only
//! materialize full [`Term`]s at the result boundary (or lazily inside
//! FILTER value comparisons).

use fedlake_rdf::{Dictionary, Term, TermId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A query variable (without the leading `?`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub Arc<str>);

impl Var {
    /// Creates a variable from its name (no leading `?`).
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable name without the `?` sigil.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A single solution mapping: variable → term.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    slots: BTreeMap<Var, Term>,
}

impl Row {
    /// An empty solution mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `var` to `term`, replacing any existing binding.
    pub fn bind(&mut self, var: Var, term: Term) {
        self.slots.insert(var, term);
    }

    /// Builder-style [`Row::bind`].
    pub fn with(mut self, var: impl Into<Var>, term: Term) -> Self {
        self.bind(var.into(), term);
        self
    }

    /// The term bound to `var`, if any.
    pub fn get(&self, var: &Var) -> Option<&Term> {
        self.slots.get(var)
    }

    /// True when `var` is bound.
    pub fn is_bound(&self, var: &Var) -> bool {
        self.slots.contains_key(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.slots.iter()
    }

    /// The set of bound variables.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.slots.keys()
    }

    /// Two rows are *compatible* when they agree on every shared variable.
    pub fn compatible(&self, other: &Row) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .iter()
            .all(|(v, t)| large.get(v).is_none_or(|u| u == t))
    }

    /// Merges two compatible rows; `None` when they conflict.
    pub fn merge(&self, other: &Row) -> Option<Row> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for (v, t) in other.iter() {
            out.slots.entry(v.clone()).or_insert_with(|| t.clone());
        }
        Some(out)
    }

    /// Restricts the row to `vars` (projection).
    pub fn project(&self, vars: &[Var]) -> Row {
        let mut out = Row::new();
        for v in vars {
            if let Some(t) = self.get(v) {
                out.bind(v.clone(), t.clone());
            }
        }
        out
    }
}

impl FromIterator<(Var, Term)> for Row {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Row { slots: iter.into_iter().collect() }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}={t}")?;
        }
        write!(f, "}}")
    }
}

/// A multiset of solution mappings.
pub type Rows = Vec<Row>;

/// The slot layout of one query: every variable the query can bind, in a
/// stable order, with a reverse index for O(1) variable → slot lookup.
///
/// Built once at plan time and shared by `Arc` across all operators of one
/// execution, so per-row work never touches variable names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowSchema {
    vars: Vec<Var>,
    index: HashMap<Var, usize>,
}

impl RowSchema {
    /// Builds a schema from `vars`, deduplicating while preserving first
    /// occurrence order.
    pub fn new(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut schema = RowSchema::default();
        for v in vars {
            if !schema.index.contains_key(&v) {
                schema.index.insert(v.clone(), schema.vars.len());
                schema.vars.push(v);
            }
        }
        schema
    }

    /// The slot index of `var`, if the schema knows it.
    pub fn slot(&self, var: &Var) -> Option<usize> {
        self.index.get(var).copied()
    }

    /// All variables in slot order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the schema has no slots.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Resolves a list of variables to slot indices, skipping variables the
    /// schema does not know (they can never be bound, so an operator keyed
    /// on them sees only unbound values either way).
    pub fn slots_of(&self, vars: &[Var]) -> Vec<usize> {
        vars.iter().filter_map(|v| self.slot(v)).collect()
    }
}

/// A dictionary-encoded solution mapping: one [`TermId`] per schema slot,
/// with [`TermId::UNBOUND`] marking unbound variables.
///
/// Equality and hashing are plain `u32`-array operations, which is what
/// makes join probes and DISTINCT dedup cheap.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotRow {
    slots: Box<[TermId]>,
}

impl SlotRow {
    /// A row of `width` unbound slots.
    pub fn unbound(width: usize) -> Self {
        SlotRow { slots: vec![TermId::UNBOUND; width].into_boxed_slice() }
    }

    /// The id in `slot`, or `None` when unbound.
    pub fn get(&self, slot: usize) -> Option<TermId> {
        match self.slots[slot] {
            TermId::UNBOUND => None,
            id => Some(id),
        }
    }

    /// Binds `slot` to `id`.
    pub fn set(&mut self, slot: usize, id: TermId) {
        self.slots[slot] = id;
    }

    /// True when `slot` holds a term.
    pub fn is_bound(&self, slot: usize) -> bool {
        self.slots[slot] != TermId::UNBOUND
    }

    /// The raw slot array (unbound slots hold [`TermId::UNBOUND`]).
    pub fn slots(&self) -> &[TermId] {
        &self.slots
    }

    /// Number of bound slots.
    pub fn bound_count(&self) -> usize {
        self.slots.iter().filter(|id| **id != TermId::UNBOUND).count()
    }

    /// Merges two rows of the same width; `None` when a slot is bound to
    /// different ids on both sides. Id equality is term equality because
    /// both rows encode through the same query-scoped interner.
    pub fn merge(&self, other: &SlotRow) -> Option<SlotRow> {
        debug_assert_eq!(self.slots.len(), other.slots.len());
        let mut out = self.clone();
        for (slot, &id) in other.slots.iter().enumerate() {
            if id == TermId::UNBOUND {
                continue;
            }
            match out.slots[slot] {
                TermId::UNBOUND => out.slots[slot] = id,
                existing if existing == id => {}
                _ => return None,
            }
        }
        Some(out)
    }
}

/// A morsel of [`SlotRow`]s in column-major layout: one `TermId` buffer
/// per schema slot plus an optional selection vector.
///
/// Batches are the currency of the vectorized executor: wrapper streams
/// fill one batch per delivered message chunk, FILTER narrows the
/// selection vector without moving data, PROJECT remaps columns, and the
/// hash operators gather individual rows only where a table insert needs
/// an owned [`SlotRow`]. All ids come from the same query-scoped
/// interner as the row-at-a-time path, so id equality remains term
/// equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBatch {
    /// One buffer per schema slot, each `rows` long (column-major).
    cols: Vec<Vec<TermId>>,
    /// Physical rows in the batch.
    rows: usize,
    /// Selected physical row indices, in order; `None` selects all rows.
    sel: Option<Vec<u32>>,
}

impl RowBatch {
    /// An empty batch of `width` columns with room for `cap` rows.
    pub fn with_capacity(width: usize, cap: usize) -> Self {
        RowBatch {
            cols: (0..width).map(|_| Vec::with_capacity(cap)).collect(),
            rows: 0,
            sel: None,
        }
    }

    /// Number of schema slots (columns).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Physical rows in the batch (ignoring the selection vector).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows visible through the selection vector.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.rows,
        }
    }

    /// True when no row is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one row, copying its slots into the column buffers.
    ///
    /// Panics when a selection vector is already installed: batches are
    /// built dense first, then narrowed.
    pub fn push_row(&mut self, row: &SlotRow) {
        assert!(self.sel.is_none(), "push into a filtered batch");
        debug_assert_eq!(row.slots().len(), self.cols.len());
        for (col, &id) in self.cols.iter_mut().zip(row.slots()) {
            col.push(id);
        }
        self.rows += 1;
    }

    /// The id at physical row `row`, column `col` (`None` when unbound).
    pub fn get(&self, row: usize, col: usize) -> Option<TermId> {
        match self.cols[col][row] {
            TermId::UNBOUND => None,
            id => Some(id),
        }
    }

    /// One column's buffer.
    pub fn col(&self, col: usize) -> &[TermId] {
        &self.cols[col]
    }

    /// The selection vector, when one is installed.
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Installs a selection vector of physical row indices (ascending).
    pub fn set_sel(&mut self, sel: Vec<u32>) {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.rows));
        self.sel = Some(sel);
    }

    /// Iterates the selected physical row indices, in order.
    pub fn selected(&self) -> impl Iterator<Item = usize> + '_ {
        let sel = self.sel.as_deref();
        let n = match sel {
            Some(s) => s.len(),
            None => self.rows,
        };
        (0..n).map(move |i| match sel {
            Some(s) => s[i] as usize,
            None => i,
        })
    }

    /// Gathers physical row `row` into `out` (which must have the batch's
    /// width), overwriting every slot.
    pub fn read_row(&self, row: usize, out: &mut SlotRow) {
        for (slot, col) in self.cols.iter().enumerate() {
            out.set(slot, col[row]);
        }
    }

    /// Materializes physical row `row` as an owned [`SlotRow`].
    pub fn to_slot_row(&self, row: usize) -> SlotRow {
        let mut out = SlotRow::unbound(self.width());
        self.read_row(row, &mut out);
        out
    }

    /// Appends the merge of `src`'s physical row `row` with the slot array
    /// `other`, mirroring [`SlotRow::merge`] exactly: a slot bound to
    /// different ids on both sides is a conflict and nothing is appended
    /// (returns `false`). Writing the merged row straight into the column
    /// buffers is what lets the vectorized hash join emit matches without
    /// materializing an intermediate [`SlotRow`] per output row.
    pub fn push_merge_from(&mut self, src: &RowBatch, row: usize, other: &[TermId]) -> bool {
        debug_assert!(self.sel.is_none(), "push into a filtered batch");
        debug_assert_eq!(self.width(), src.width());
        debug_assert_eq!(other.len(), src.width());
        for (col, &b) in src.cols.iter().zip(other) {
            let a = col[row];
            if a != TermId::UNBOUND && b != TermId::UNBOUND && a != b {
                return false;
            }
        }
        for (dst, (col, &b)) in self.cols.iter_mut().zip(src.cols.iter().zip(other)) {
            let a = col[row];
            dst.push(if a == TermId::UNBOUND { b } else { a });
        }
        self.rows += 1;
        true
    }

    /// Wraps pre-built column buffers (all the same length) as a dense
    /// batch — the zero-copy handoff from a columnar wrapper store.
    pub fn from_cols(cols: Vec<Vec<TermId>>) -> Self {
        let rows = cols.first().map_or(0, Vec::len);
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        RowBatch { cols, rows, sel: None }
    }

    /// A single-row batch holding `row`.
    pub fn from_row(row: &SlotRow) -> Self {
        let mut b = RowBatch::with_capacity(row.slots().len(), 1);
        b.push_row(row);
        b
    }

    /// Projects the batch to `keep_slots`: kept columns are gathered
    /// through the selection vector into a dense batch, all other columns
    /// come out unbound.
    pub fn remap(&self, keep_slots: &[usize]) -> RowBatch {
        let n = self.len();
        let mut cols = vec![vec![TermId::UNBOUND; n]; self.width()];
        for &s in keep_slots {
            let src = &self.cols[s];
            let dst = &mut cols[s];
            for (j, i) in self.selected().enumerate() {
                dst[j] = src[i];
            }
        }
        RowBatch { cols, rows: n, sel: None }
    }

    /// Consuming variant of [`RowBatch::remap`]: compacts the kept columns
    /// through the selection vector in place and blanks the dropped ones,
    /// reusing the batch's own buffers. Produces exactly the batch
    /// `remap` would, without allocating.
    pub fn remap_owned(mut self, keep_slots: &[usize]) -> RowBatch {
        match self.sel.take() {
            None => {
                for (s, col) in self.cols.iter_mut().enumerate() {
                    if !keep_slots.contains(&s) {
                        col.fill(TermId::UNBOUND);
                    }
                }
                self
            }
            Some(sel) => {
                let n = sel.len();
                for (s, col) in self.cols.iter_mut().enumerate() {
                    if keep_slots.contains(&s) {
                        // `sel` is ascending, so `j <= sel[j]` and the
                        // in-place gather never overwrites a pending read.
                        for (j, &i) in sel.iter().enumerate() {
                            col[j] = col[i as usize];
                        }
                        col.truncate(n);
                    } else {
                        col.truncate(n);
                        col.fill(TermId::UNBOUND);
                    }
                }
                self.rows = n;
                self
            }
        }
    }
}

/// Lets hash containers keyed by [`SlotRow`] answer lookups from a bare
/// slot slice without materializing a row (the derived `Hash` hashes the
/// slice, so the contracts line up).
impl std::borrow::Borrow<[TermId]> for SlotRow {
    fn borrow(&self) -> &[TermId] {
        &self.slots
    }
}

/// Encodes a [`Row`] into schema slots, interning each term. Variables the
/// schema does not know are dropped (the schema covers every variable the
/// query can bind, so this only loses bindings no operator can see).
pub fn encode_row(row: &Row, schema: &RowSchema, dict: &mut Dictionary) -> SlotRow {
    let mut out = SlotRow::unbound(schema.len());
    for (v, t) in row.iter() {
        if let Some(slot) = schema.slot(v) {
            out.set(slot, dict.intern(t.clone()));
        }
    }
    out
}

/// Materializes a [`SlotRow`] back into a variable → term mapping.
///
/// Panics when a bound id is missing from `dict`; encode and decode must
/// use the same query-scoped dictionary.
pub fn decode_row(row: &SlotRow, schema: &RowSchema, dict: &Dictionary) -> Row {
    let mut out = Row::new();
    for (slot, v) in schema.vars().iter().enumerate() {
        if let Some(id) = row.get(slot) {
            let term = dict.term(id).expect("slot id interned in this query's dictionary");
            out.bind(v.clone(), term.clone());
        }
    }
    out
}

/// Decodes physical row `row` of a batch straight from the column
/// buffers — identical output to `decode_row(&batch.to_slot_row(row), ..)`
/// without materializing the intermediate [`SlotRow`].
pub fn decode_batch_row(
    batch: &RowBatch,
    row: usize,
    schema: &RowSchema,
    dict: &Dictionary,
) -> Row {
    let mut out = Row::new();
    for (slot, v) in schema.vars().iter().enumerate() {
        if let Some(id) = batch.get(row, slot) {
            let term = dict.term(id).expect("slot id interned in this query's dictionary");
            out.bind(v.clone(), term.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &str) -> Term {
        Term::iri(format!("http://x/{v}"))
    }

    #[test]
    fn bind_and_get() {
        let r = Row::new().with("x", t("a"));
        assert_eq!(r.get(&Var::new("x")), Some(&t("a")));
        assert!(r.get(&Var::new("y")).is_none());
        assert!(r.is_bound(&Var::new("x")));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn compatible_when_disjoint() {
        let a = Row::new().with("x", t("a"));
        let b = Row::new().with("y", t("b"));
        assert!(a.compatible(&b));
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn compatible_when_agreeing() {
        let a = Row::new().with("x", t("a")).with("y", t("b"));
        let b = Row::new().with("x", t("a")).with("z", t("c"));
        assert!(a.compatible(&b));
        assert_eq!(a.merge(&b).unwrap().len(), 3);
    }

    #[test]
    fn incompatible_when_conflicting() {
        let a = Row::new().with("x", t("a"));
        let b = Row::new().with("x", t("b"));
        assert!(!a.compatible(&b));
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn projection_keeps_only_requested() {
        let r = Row::new().with("x", t("a")).with("y", t("b"));
        let p = r.project(&[Var::new("y"), Var::new("z")]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&Var::new("y")), Some(&t("b")));
    }

    #[test]
    fn display_is_readable() {
        let r = Row::new().with("x", t("a"));
        assert_eq!(r.to_string(), "{?x=<http://x/a>}");
    }

    #[test]
    fn empty_row_compatible_with_all() {
        let a = Row::new();
        let b = Row::new().with("x", t("a"));
        assert!(a.compatible(&b));
        assert_eq!(a.merge(&b).unwrap(), b);
    }

    #[test]
    fn schema_dedups_preserving_order() {
        let s = RowSchema::new(["x", "y", "x", "z"].map(Var::new));
        assert_eq!(s.len(), 3);
        assert_eq!(s.slot(&Var::new("x")), Some(0));
        assert_eq!(s.slot(&Var::new("y")), Some(1));
        assert_eq!(s.slot(&Var::new("z")), Some(2));
        assert_eq!(s.slot(&Var::new("w")), None);
        assert_eq!(s.slots_of(&[Var::new("z"), Var::new("w"), Var::new("x")]), vec![2, 0]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = RowSchema::new(["x", "y", "z"].map(Var::new));
        let mut dict = Dictionary::new();
        let row = Row::new().with("x", t("a")).with("z", t("c"));
        let enc = encode_row(&row, &s, &mut dict);
        assert!(enc.is_bound(0));
        assert!(!enc.is_bound(1));
        assert_eq!(enc.bound_count(), 2);
        assert_eq!(decode_row(&enc, &s, &dict), row);
    }

    #[test]
    fn slot_merge_matches_row_merge() {
        let s = RowSchema::new(["x", "y", "z"].map(Var::new));
        let mut dict = Dictionary::new();
        let a = Row::new().with("x", t("a")).with("y", t("b"));
        let b = Row::new().with("y", t("b")).with("z", t("c"));
        let c = Row::new().with("y", t("other"));
        let (ea, eb, ec) = (
            encode_row(&a, &s, &mut dict),
            encode_row(&b, &s, &mut dict),
            encode_row(&c, &s, &mut dict),
        );
        let merged = ea.merge(&eb).unwrap();
        assert_eq!(decode_row(&merged, &s, &dict), a.merge(&b).unwrap());
        assert!(ea.merge(&ec).is_none());
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn slot_rows_hash_and_compare_by_id() {
        let s = RowSchema::new(["x"].map(Var::new));
        let mut dict = Dictionary::new();
        let a = encode_row(&Row::new().with("x", t("a")), &s, &mut dict);
        let b = encode_row(&Row::new().with("x", t("a")), &s, &mut dict);
        let c = encode_row(&Row::new().with("x", t("b")), &s, &mut dict);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: std::collections::HashSet<SlotRow> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn batch_roundtrips_rows() {
        let s = RowSchema::new(["x", "y"].map(Var::new));
        let mut dict = Dictionary::new();
        let rows: Vec<SlotRow> = [("a", "b"), ("c", "d"), ("e", "f")]
            .iter()
            .map(|(x, y)| {
                encode_row(&Row::new().with("x", t(x)).with("y", t(y)), &s, &mut dict)
            })
            .collect();
        let mut batch = RowBatch::with_capacity(s.len(), rows.len());
        for r in &rows {
            batch.push_row(r);
        }
        assert_eq!(batch.width(), 2);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.len(), 3);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&batch.to_slot_row(i), r);
            assert_eq!(batch.get(i, 0), r.get(0));
        }
        let mut scratch = SlotRow::unbound(2);
        batch.read_row(1, &mut scratch);
        assert_eq!(scratch, rows[1]);
    }

    #[test]
    fn batch_selection_vector_narrows() {
        let s = RowSchema::new(["x"].map(Var::new));
        let mut dict = Dictionary::new();
        let mut batch = RowBatch::with_capacity(1, 4);
        for v in ["a", "b", "c", "d"] {
            batch.push_row(&encode_row(&Row::new().with("x", t(v)), &s, &mut dict));
        }
        assert_eq!(batch.selected().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        batch.set_sel(vec![1, 3]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.rows(), 4, "selection hides, never moves");
        assert_eq!(batch.selected().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!batch.is_empty());
        batch.set_sel(Vec::new());
        assert!(batch.is_empty());
    }

    #[test]
    fn batch_from_single_row_and_unbound_slots() {
        let s = RowSchema::new(["x", "y"].map(Var::new));
        let mut dict = Dictionary::new();
        let r = encode_row(&Row::new().with("y", t("only")), &s, &mut dict);
        let batch = RowBatch::from_row(&r);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.get(0, 0), None, "unbound slot stays unbound");
        assert_eq!(batch.get(0, 1), r.get(1));
        assert_eq!(batch.to_slot_row(0), r);
    }

    #[test]
    fn slot_row_borrows_as_slice_for_lookups() {
        use std::borrow::Borrow;
        let s = RowSchema::new(["x"].map(Var::new));
        let mut dict = Dictionary::new();
        let a = encode_row(&Row::new().with("x", t("a")), &s, &mut dict);
        let ids: &[TermId] = a.borrow();
        let set: std::collections::HashSet<SlotRow> = [a.clone()].into_iter().collect();
        assert!(set.contains(ids));
    }
}
