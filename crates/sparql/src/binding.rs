//! Solution mappings.
//!
//! A [`Row`] maps variables to RDF terms by value; it is the external
//! currency at API boundaries (final results, the local SPARQL evaluator).
//! Inside the federated engine, solution mappings travel as [`SlotRow`]s:
//! fixed-width arrays of [`TermId`]s laid out by a per-query [`RowSchema`]
//! and interned in a query-scoped dictionary shared across all sources.
//! Operators then hash and compare `u32` ids instead of strings, and only
//! materialize full [`Term`]s at the result boundary (or lazily inside
//! FILTER value comparisons).

use fedlake_rdf::{Dictionary, Term, TermId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A query variable (without the leading `?`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub Arc<str>);

impl Var {
    /// Creates a variable from its name (no leading `?`).
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable name without the `?` sigil.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A single solution mapping: variable → term.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    slots: BTreeMap<Var, Term>,
}

impl Row {
    /// An empty solution mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `var` to `term`, replacing any existing binding.
    pub fn bind(&mut self, var: Var, term: Term) {
        self.slots.insert(var, term);
    }

    /// Builder-style [`Row::bind`].
    pub fn with(mut self, var: impl Into<Var>, term: Term) -> Self {
        self.bind(var.into(), term);
        self
    }

    /// The term bound to `var`, if any.
    pub fn get(&self, var: &Var) -> Option<&Term> {
        self.slots.get(var)
    }

    /// True when `var` is bound.
    pub fn is_bound(&self, var: &Var) -> bool {
        self.slots.contains_key(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.slots.iter()
    }

    /// The set of bound variables.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.slots.keys()
    }

    /// Two rows are *compatible* when they agree on every shared variable.
    pub fn compatible(&self, other: &Row) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .iter()
            .all(|(v, t)| large.get(v).is_none_or(|u| u == t))
    }

    /// Merges two compatible rows; `None` when they conflict.
    pub fn merge(&self, other: &Row) -> Option<Row> {
        if !self.compatible(other) {
            return None;
        }
        let mut out = self.clone();
        for (v, t) in other.iter() {
            out.slots.entry(v.clone()).or_insert_with(|| t.clone());
        }
        Some(out)
    }

    /// Restricts the row to `vars` (projection).
    pub fn project(&self, vars: &[Var]) -> Row {
        let mut out = Row::new();
        for v in vars {
            if let Some(t) = self.get(v) {
                out.bind(v.clone(), t.clone());
            }
        }
        out
    }
}

impl FromIterator<(Var, Term)> for Row {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Row { slots: iter.into_iter().collect() }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}={t}")?;
        }
        write!(f, "}}")
    }
}

/// A multiset of solution mappings.
pub type Rows = Vec<Row>;

/// The slot layout of one query: every variable the query can bind, in a
/// stable order, with a reverse index for O(1) variable → slot lookup.
///
/// Built once at plan time and shared by `Arc` across all operators of one
/// execution, so per-row work never touches variable names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowSchema {
    vars: Vec<Var>,
    index: HashMap<Var, usize>,
}

impl RowSchema {
    /// Builds a schema from `vars`, deduplicating while preserving first
    /// occurrence order.
    pub fn new(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut schema = RowSchema::default();
        for v in vars {
            if !schema.index.contains_key(&v) {
                schema.index.insert(v.clone(), schema.vars.len());
                schema.vars.push(v);
            }
        }
        schema
    }

    /// The slot index of `var`, if the schema knows it.
    pub fn slot(&self, var: &Var) -> Option<usize> {
        self.index.get(var).copied()
    }

    /// All variables in slot order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the schema has no slots.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Resolves a list of variables to slot indices, skipping variables the
    /// schema does not know (they can never be bound, so an operator keyed
    /// on them sees only unbound values either way).
    pub fn slots_of(&self, vars: &[Var]) -> Vec<usize> {
        vars.iter().filter_map(|v| self.slot(v)).collect()
    }
}

/// A dictionary-encoded solution mapping: one [`TermId`] per schema slot,
/// with [`TermId::UNBOUND`] marking unbound variables.
///
/// Equality and hashing are plain `u32`-array operations, which is what
/// makes join probes and DISTINCT dedup cheap.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotRow {
    slots: Box<[TermId]>,
}

impl SlotRow {
    /// A row of `width` unbound slots.
    pub fn unbound(width: usize) -> Self {
        SlotRow { slots: vec![TermId::UNBOUND; width].into_boxed_slice() }
    }

    /// The id in `slot`, or `None` when unbound.
    pub fn get(&self, slot: usize) -> Option<TermId> {
        match self.slots[slot] {
            TermId::UNBOUND => None,
            id => Some(id),
        }
    }

    /// Binds `slot` to `id`.
    pub fn set(&mut self, slot: usize, id: TermId) {
        self.slots[slot] = id;
    }

    /// True when `slot` holds a term.
    pub fn is_bound(&self, slot: usize) -> bool {
        self.slots[slot] != TermId::UNBOUND
    }

    /// The raw slot array (unbound slots hold [`TermId::UNBOUND`]).
    pub fn slots(&self) -> &[TermId] {
        &self.slots
    }

    /// Number of bound slots.
    pub fn bound_count(&self) -> usize {
        self.slots.iter().filter(|id| **id != TermId::UNBOUND).count()
    }

    /// Merges two rows of the same width; `None` when a slot is bound to
    /// different ids on both sides. Id equality is term equality because
    /// both rows encode through the same query-scoped interner.
    pub fn merge(&self, other: &SlotRow) -> Option<SlotRow> {
        debug_assert_eq!(self.slots.len(), other.slots.len());
        let mut out = self.clone();
        for (slot, &id) in other.slots.iter().enumerate() {
            if id == TermId::UNBOUND {
                continue;
            }
            match out.slots[slot] {
                TermId::UNBOUND => out.slots[slot] = id,
                existing if existing == id => {}
                _ => return None,
            }
        }
        Some(out)
    }
}

/// Encodes a [`Row`] into schema slots, interning each term. Variables the
/// schema does not know are dropped (the schema covers every variable the
/// query can bind, so this only loses bindings no operator can see).
pub fn encode_row(row: &Row, schema: &RowSchema, dict: &mut Dictionary) -> SlotRow {
    let mut out = SlotRow::unbound(schema.len());
    for (v, t) in row.iter() {
        if let Some(slot) = schema.slot(v) {
            out.set(slot, dict.intern(t.clone()));
        }
    }
    out
}

/// Materializes a [`SlotRow`] back into a variable → term mapping.
///
/// Panics when a bound id is missing from `dict`; encode and decode must
/// use the same query-scoped dictionary.
pub fn decode_row(row: &SlotRow, schema: &RowSchema, dict: &Dictionary) -> Row {
    let mut out = Row::new();
    for (slot, v) in schema.vars().iter().enumerate() {
        if let Some(id) = row.get(slot) {
            let term = dict.term(id).expect("slot id interned in this query's dictionary");
            out.bind(v.clone(), term.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &str) -> Term {
        Term::iri(format!("http://x/{v}"))
    }

    #[test]
    fn bind_and_get() {
        let r = Row::new().with("x", t("a"));
        assert_eq!(r.get(&Var::new("x")), Some(&t("a")));
        assert!(r.get(&Var::new("y")).is_none());
        assert!(r.is_bound(&Var::new("x")));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn compatible_when_disjoint() {
        let a = Row::new().with("x", t("a"));
        let b = Row::new().with("y", t("b"));
        assert!(a.compatible(&b));
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn compatible_when_agreeing() {
        let a = Row::new().with("x", t("a")).with("y", t("b"));
        let b = Row::new().with("x", t("a")).with("z", t("c"));
        assert!(a.compatible(&b));
        assert_eq!(a.merge(&b).unwrap().len(), 3);
    }

    #[test]
    fn incompatible_when_conflicting() {
        let a = Row::new().with("x", t("a"));
        let b = Row::new().with("x", t("b"));
        assert!(!a.compatible(&b));
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn projection_keeps_only_requested() {
        let r = Row::new().with("x", t("a")).with("y", t("b"));
        let p = r.project(&[Var::new("y"), Var::new("z")]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&Var::new("y")), Some(&t("b")));
    }

    #[test]
    fn display_is_readable() {
        let r = Row::new().with("x", t("a"));
        assert_eq!(r.to_string(), "{?x=<http://x/a>}");
    }

    #[test]
    fn empty_row_compatible_with_all() {
        let a = Row::new();
        let b = Row::new().with("x", t("a"));
        assert!(a.compatible(&b));
        assert_eq!(a.merge(&b).unwrap(), b);
    }

    #[test]
    fn schema_dedups_preserving_order() {
        let s = RowSchema::new(["x", "y", "x", "z"].map(Var::new));
        assert_eq!(s.len(), 3);
        assert_eq!(s.slot(&Var::new("x")), Some(0));
        assert_eq!(s.slot(&Var::new("y")), Some(1));
        assert_eq!(s.slot(&Var::new("z")), Some(2));
        assert_eq!(s.slot(&Var::new("w")), None);
        assert_eq!(s.slots_of(&[Var::new("z"), Var::new("w"), Var::new("x")]), vec![2, 0]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = RowSchema::new(["x", "y", "z"].map(Var::new));
        let mut dict = Dictionary::new();
        let row = Row::new().with("x", t("a")).with("z", t("c"));
        let enc = encode_row(&row, &s, &mut dict);
        assert!(enc.is_bound(0));
        assert!(!enc.is_bound(1));
        assert_eq!(enc.bound_count(), 2);
        assert_eq!(decode_row(&enc, &s, &dict), row);
    }

    #[test]
    fn slot_merge_matches_row_merge() {
        let s = RowSchema::new(["x", "y", "z"].map(Var::new));
        let mut dict = Dictionary::new();
        let a = Row::new().with("x", t("a")).with("y", t("b"));
        let b = Row::new().with("y", t("b")).with("z", t("c"));
        let c = Row::new().with("y", t("other"));
        let (ea, eb, ec) = (
            encode_row(&a, &s, &mut dict),
            encode_row(&b, &s, &mut dict),
            encode_row(&c, &s, &mut dict),
        );
        let merged = ea.merge(&eb).unwrap();
        assert_eq!(decode_row(&merged, &s, &dict), a.merge(&b).unwrap());
        assert!(ea.merge(&ec).is_none());
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn slot_rows_hash_and_compare_by_id() {
        let s = RowSchema::new(["x"].map(Var::new));
        let mut dict = Dictionary::new();
        let a = encode_row(&Row::new().with("x", t("a")), &s, &mut dict);
        let b = encode_row(&Row::new().with("x", t("a")), &s, &mut dict);
        let c = encode_row(&Row::new().with("x", t("b")), &s, &mut dict);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: std::collections::HashSet<SlotRow> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
