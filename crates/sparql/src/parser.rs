//! Recursive-descent parser for the supported SPARQL subset.

use crate::ast::*;
use crate::binding::Var;
use crate::error::SparqlError;
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::token::{tokenize, Token};
use fedlake_rdf::{Literal, Term};
use std::collections::HashMap;

/// Parses a SPARQL `SELECT` query.
pub fn parse_query(input: &str) -> Result<SelectQuery, SparqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, prefixes: HashMap::new() };
    p.query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), SparqlError> {
        match self.bump() {
            Token::Punct(q) if q == p => Ok(()),
            other => Err(SparqlError::Parse(format!("expected {p:?}, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Token::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        let t = self.bump();
        if t.is_keyword(kw) {
            Ok(())
        } else {
            Err(SparqlError::Parse(format!("expected {kw}, found {t:?}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn query(&mut self) -> Result<SelectQuery, SparqlError> {
        // PREFIX declarations.
        while self.peek().is_keyword("PREFIX") {
            self.bump();
            let name = match self.bump() {
                Token::Word(w) if w.ends_with(':') => w[..w.len() - 1].to_string(),
                other => {
                    return Err(SparqlError::Parse(format!("expected prefix name, found {other:?}")))
                }
            };
            let iri = match self.bump() {
                Token::Iri(i) => i,
                other => {
                    return Err(SparqlError::Parse(format!("expected prefix IRI, found {other:?}")))
                }
            };
            self.prefixes.insert(name, iri);
        }

        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projection = Vec::new();
        if !self.eat_punct("*") {
            while let Token::Variable(v) = self.peek() {
                projection.push(Var::new(v));
                self.bump();
            }
            if projection.is_empty() {
                return Err(SparqlError::Parse("empty projection".into()));
            }
        }
        self.expect_keyword("WHERE")?;
        let pattern = self.group()?;

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek().clone() {
                    Token::Variable(v) => {
                        self.bump();
                        order_by.push(OrderKey { var: Var::new(v), order: Order::Asc });
                    }
                    Token::Word(w)
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let dir = if w.eq_ignore_ascii_case("ASC") { Order::Asc } else { Order::Desc };
                        self.bump();
                        self.expect_punct("(")?;
                        let v = match self.bump() {
                            Token::Variable(v) => v,
                            other => {
                                return Err(SparqlError::Parse(format!(
                                    "expected variable in ORDER BY, found {other:?}"
                                )))
                            }
                        };
                        self.expect_punct(")")?;
                        order_by.push(OrderKey { var: Var::new(v), order: dir });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(SparqlError::Parse("empty ORDER BY".into()));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("LIMIT") {
                match self.bump() {
                    Token::Integer(n) if n >= 0 => limit = Some(n as usize),
                    other => {
                        return Err(SparqlError::Parse(format!("bad LIMIT: {other:?}")))
                    }
                }
            } else if self.eat_keyword("OFFSET") {
                match self.bump() {
                    Token::Integer(n) if n >= 0 => offset = Some(n as usize),
                    other => {
                        return Err(SparqlError::Parse(format!("bad OFFSET: {other:?}")))
                    }
                }
            } else {
                break;
            }
        }

        match self.peek() {
            Token::Eof => {}
            other => {
                return Err(SparqlError::Parse(format!("trailing tokens: {other:?}")))
            }
        }

        Ok(SelectQuery { projection, distinct, pattern, order_by, limit, offset })
    }

    fn group(&mut self) -> Result<GroupGraphPattern, SparqlError> {
        self.expect_punct("{")?;
        let mut elements = Vec::new();
        loop {
            if self.eat_punct("}") {
                break;
            }
            match self.peek().clone() {
                Token::Eof => return Err(SparqlError::Parse("unterminated group".into())),
                Token::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    self.expect_punct("(")?;
                    let e = self.expr()?;
                    self.expect_punct(")")?;
                    elements.push(PatternElement::Filter(e));
                    self.eat_punct(".");
                }
                Token::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    let g = self.group()?;
                    elements.push(PatternElement::Optional(g));
                    self.eat_punct(".");
                }
                Token::Punct("{") => {
                    // Nested group, possibly a UNION chain.
                    let first = self.group()?;
                    if self.peek().is_keyword("UNION") {
                        let mut branches = vec![first];
                        while self.eat_keyword("UNION") {
                            branches.push(self.group()?);
                        }
                        elements.push(PatternElement::Union(branches));
                    } else {
                        elements.push(PatternElement::Group(first));
                    }
                    self.eat_punct(".");
                }
                _ => {
                    // One subject with `;`/`,`-abbreviated predicates.
                    let s = self.var_or_term()?;
                    loop {
                        let p = self.predicate()?;
                        loop {
                            let o = self.var_or_term()?;
                            elements.push(PatternElement::Triple(TriplePattern::new(
                                s.clone(),
                                p.clone(),
                                o,
                            )));
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        if !self.eat_punct(";") {
                            break;
                        }
                        // Allow a dangling `;` before `}` or `.`.
                        if matches!(self.peek(), Token::Punct("}") | Token::Punct(".")) {
                            break;
                        }
                    }
                    self.eat_punct(".");
                }
            }
        }
        Ok(GroupGraphPattern { elements })
    }

    fn predicate(&mut self) -> Result<VarOrTerm, SparqlError> {
        if matches!(self.peek(), Token::Word(w) if w == "a") {
            self.bump();
            return Ok(VarOrTerm::iri(fedlake_rdf::vocab::rdf::TYPE));
        }
        self.var_or_term()
    }

    fn var_or_term(&mut self) -> Result<VarOrTerm, SparqlError> {
        match self.bump() {
            Token::Variable(v) => Ok(VarOrTerm::Var(Var::new(v))),
            Token::Iri(i) => Ok(VarOrTerm::Term(Term::iri(i))),
            Token::Blank(b) => Ok(VarOrTerm::Term(Term::blank(b))),
            Token::Literal { lexical, lang, datatype } => {
                Ok(VarOrTerm::Term(self.make_literal(lexical, lang, datatype)?))
            }
            Token::Integer(n) => Ok(VarOrTerm::Term(Term::integer(n))),
            Token::Double(d) => Ok(VarOrTerm::Term(Term::double(d))),
            Token::Word(w) if w.contains(':') => Ok(VarOrTerm::Term(Term::iri(
                self.resolve_prefixed(&w)?,
            ))),
            Token::Word(w) if w.eq_ignore_ascii_case("true") => {
                Ok(VarOrTerm::Term(Term::Literal(Literal::boolean(true))))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("false") => {
                Ok(VarOrTerm::Term(Term::Literal(Literal::boolean(false))))
            }
            other => Err(SparqlError::Parse(format!("expected term, found {other:?}"))),
        }
    }

    fn make_literal(
        &mut self,
        lexical: String,
        lang: Option<String>,
        datatype: Option<String>,
    ) -> Result<Term, SparqlError> {
        let datatype = match datatype {
            Some(dt) if dt.contains("://") => Some(dt),
            Some(dt) => Some(self.resolve_prefixed(&dt)?),
            None => None,
        };
        Ok(Term::Literal(Literal { lexical, lang, datatype }))
    }

    fn resolve_prefixed(&self, word: &str) -> Result<String, SparqlError> {
        let (prefix, local) = word
            .split_once(':')
            .ok_or_else(|| SparqlError::Parse(format!("not a prefixed name: {word}")))?;
        let base = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| SparqlError::UnknownPrefix(prefix.to_string()))?;
        Ok(format!("{base}{local}"))
    }

    // Expression grammar: or ← and ← not ← cmp ← add ← mul ← unary.
    fn expr(&mut self) -> Result<Expr, SparqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.and_expr()?;
        while self.eat_punct("||") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let right = self.cmp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SparqlError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Token::Punct("=") => CmpOp::Eq,
            Token::Punct("!=") => CmpOp::Ne,
            Token::Punct("<") => CmpOp::Lt,
            Token::Punct("<=") => CmpOp::Le,
            Token::Punct(">") => CmpOp::Gt,
            Token::Punct(">=") => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(Expr::Cmp(Box::new(left), op, Box::new(right)))
    }

    fn add_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Punct("+") => ArithOp::Add,
                Token::Punct("-") => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Punct("*") => ArithOp::Mul,
                Token::Punct("/") => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, SparqlError> {
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.bump() {
            Token::Variable(v) => Ok(Expr::Var(Var::new(v))),
            Token::Integer(n) => Ok(Expr::Const(Term::integer(n))),
            Token::Double(d) => Ok(Expr::Const(Term::double(d))),
            Token::Iri(i) => Ok(Expr::Const(Term::iri(i))),
            Token::Literal { lexical, lang, datatype } => {
                Ok(Expr::Const(self.make_literal(lexical, lang, datatype)?))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("BOUND") => {
                self.expect_punct("(")?;
                let v = match self.bump() {
                    Token::Variable(v) => Var::new(v),
                    other => {
                        return Err(SparqlError::Parse(format!("BOUND expects variable, found {other:?}")))
                    }
                };
                self.expect_punct(")")?;
                Ok(Expr::Bound(v))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("REGEX") => {
                self.expect_punct("(")?;
                let target = self.expr()?;
                self.expect_punct(",")?;
                let pattern = match self.bump() {
                    Token::Literal { lexical, .. } => lexical,
                    other => {
                        return Err(SparqlError::Parse(format!("REGEX expects string pattern, found {other:?}")))
                    }
                };
                // Optional flags argument is accepted and ignored
                // (case-insensitivity is not modeled).
                if self.eat_punct(",") {
                    self.bump();
                }
                self.expect_punct(")")?;
                Ok(Expr::Regex(Box::new(target), pattern))
            }
            Token::Word(w)
                if w.eq_ignore_ascii_case("CONTAINS")
                    || w.eq_ignore_ascii_case("STRSTARTS")
                    || w.eq_ignore_ascii_case("STRENDS") =>
            {
                self.expect_punct("(")?;
                let a = self.expr()?;
                self.expect_punct(",")?;
                let b = self.expr()?;
                self.expect_punct(")")?;
                Ok(match w.to_ascii_uppercase().as_str() {
                    "CONTAINS" => Expr::Contains(Box::new(a), Box::new(b)),
                    "STRSTARTS" => Expr::StrStarts(Box::new(a), Box::new(b)),
                    _ => Expr::StrEnds(Box::new(a), Box::new(b)),
                })
            }
            Token::Word(w) if w.eq_ignore_ascii_case("STR") => {
                self.expect_punct("(")?;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Str(Box::new(e)))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("LANG") => {
                self.expect_punct("(")?;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Lang(Box::new(e)))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("true") => {
                Ok(Expr::Const(Term::Literal(Literal::boolean(true))))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("false") => {
                Ok(Expr::Const(Term::Literal(Literal::boolean(false))))
            }
            Token::Word(w) if w.contains(':') => {
                Ok(Expr::Const(Term::iri(self.resolve_prefixed(&w)?)))
            }
            other => Err(SparqlError::Parse(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PatternElement as PE;

    #[test]
    fn parse_minimal() {
        let q = parse_query("SELECT ?x WHERE { ?x a <http://x/C> }").unwrap();
        assert_eq!(q.projection, vec![Var::new("x")]);
        assert!(!q.distinct);
        assert_eq!(q.pattern.elements.len(), 1);
    }

    #[test]
    fn parse_star() {
        let q = parse_query("SELECT * WHERE { ?x <http://p> ?y }").unwrap();
        assert!(q.projection.is_empty());
        assert_eq!(q.effective_projection().len(), 2);
    }

    #[test]
    fn parse_prefixes() {
        let q = parse_query(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?n WHERE { ?s foaf:name ?n }",
        )
        .unwrap();
        match &q.pattern.elements[0] {
            PE::Triple(t) => {
                assert_eq!(
                    t.p.as_term().unwrap().as_iri().unwrap(),
                    "http://xmlns.com/foaf/0.1/name"
                );
            }
            other => panic!("expected triple, got {other:?}"),
        }
    }

    #[test]
    fn unknown_prefix_is_error() {
        let err = parse_query("SELECT ?n WHERE { ?s foaf:name ?n }").unwrap_err();
        assert!(matches!(err, SparqlError::UnknownPrefix(p) if p == "foaf"));
    }

    #[test]
    fn parse_filter() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://p> ?y . FILTER(?y > 3 && ?y < 10) }",
        )
        .unwrap();
        assert_eq!(q.pattern.filters().len(), 1);
    }

    #[test]
    fn parse_optional() {
        let q = parse_query(
            "SELECT ?x ?n WHERE { ?x a <http://C> . OPTIONAL { ?x <http://name> ?n } }",
        )
        .unwrap();
        assert!(q
            .pattern
            .elements
            .iter()
            .any(|e| matches!(e, PE::Optional(_))));
    }

    #[test]
    fn parse_union() {
        let q = parse_query(
            "SELECT ?x WHERE { { ?x a <http://C> } UNION { ?x a <http://D> } }",
        )
        .unwrap();
        match &q.pattern.elements[0] {
            PE::Union(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn parse_modifiers() {
        let q = parse_query(
            "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].order, Order::Desc);
        assert_eq!(q.order_by[1].order, Order::Asc);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn parse_predicate_object_lists() {
        let q = parse_query(
            "SELECT * WHERE { ?x <http://p> ?a , ?b ; <http://q> ?c . }",
        )
        .unwrap();
        assert_eq!(q.pattern.triples().len(), 3);
        // All share the same subject.
        for t in q.pattern.triples() {
            assert_eq!(t.s, VarOrTerm::var("x"));
        }
    }

    #[test]
    fn parse_string_functions() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://p> ?n . FILTER(CONTAINS(STR(?n), "sapiens")) }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.filters().len(), 1);
        assert!(q.pattern.filters()[0].is_simple_instantiation());
    }

    #[test]
    fn parse_regex_filter() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://p> ?n . FILTER(REGEX(?n, "^Homo")) }"#,
        )
        .unwrap();
        assert!(matches!(q.pattern.filters()[0], Expr::Regex(_, _)));
    }

    #[test]
    fn parse_typed_literal_object() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> }"#,
        )
        .unwrap();
        match &q.pattern.elements[0] {
            PE::Triple(t) => assert_eq!(t.o.as_term().unwrap(), &Term::integer(5)),
            other => panic!("expected triple, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_query("SELECT ?x WHERE { ?x <http://p> ?y } garbage").is_err());
    }

    #[test]
    fn missing_where_is_error() {
        assert!(parse_query("SELECT ?x { ?x <http://p> ?y }").is_err());
    }

    #[test]
    fn parse_nested_group() {
        let q = parse_query("SELECT ?x WHERE { { ?x a <http://C> } }").unwrap();
        assert!(matches!(q.pattern.elements[0], PE::Group(_)));
        assert_eq!(q.pattern.triples().len(), 1);
    }
}
