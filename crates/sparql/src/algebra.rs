//! The SPARQL logical algebra.
//!
//! [`translate`] lowers a parsed [`SelectQuery`] into an [`Algebra`] tree.
//! The local evaluator ([`crate::eval`]) interprets the tree against a
//! triple store; the federated engine (`fedlake-core`) decomposes and
//! re-plans it across sources.

use crate::ast::{GroupGraphPattern, OrderKey, PatternElement, SelectQuery, TriplePattern};
use crate::binding::Var;
use crate::expr::Expr;

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Algebra {
    /// A basic graph pattern: the conjunction of triple patterns.
    Bgp(Vec<TriplePattern>),
    /// Natural join.
    Join(Box<Algebra>, Box<Algebra>),
    /// Left outer join (from `OPTIONAL`), with an optional join condition.
    LeftJoin(Box<Algebra>, Box<Algebra>, Option<Expr>),
    /// Selection.
    Filter(Expr, Box<Algebra>),
    /// N-ary union.
    Union(Vec<Algebra>),
    /// Projection.
    Project(Vec<Var>, Box<Algebra>),
    /// Duplicate elimination.
    Distinct(Box<Algebra>),
    /// Sorting.
    OrderBy(Vec<OrderKey>, Box<Algebra>),
    /// `LIMIT`/`OFFSET`.
    Slice {
        /// Input plan.
        input: Box<Algebra>,
        /// Maximum rows to emit.
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
    },
}

impl Algebra {
    /// All variables that can be bound by this plan.
    pub fn vars(&self) -> Vec<Var> {
        fn push_unique(out: &mut Vec<Var>, v: Var) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        fn walk(a: &Algebra, out: &mut Vec<Var>) {
            match a {
                Algebra::Bgp(triples) => {
                    for t in triples {
                        for v in t.vars() {
                            push_unique(out, v);
                        }
                    }
                }
                Algebra::Join(l, r) | Algebra::LeftJoin(l, r, _) => {
                    walk(l, out);
                    walk(r, out);
                }
                Algebra::Filter(_, inner)
                | Algebra::Distinct(inner)
                | Algebra::OrderBy(_, inner) => walk(inner, out),
                Algebra::Union(branches) => {
                    for b in branches {
                        walk(b, out);
                    }
                }
                Algebra::Project(vars, _) => {
                    for v in vars {
                        push_unique(out, v.clone());
                    }
                }
                Algebra::Slice { input, .. } => walk(input, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

/// Lowers a group graph pattern to algebra (without solution modifiers).
pub fn translate_pattern(group: &GroupGraphPattern) -> Algebra {
    let mut current: Option<Algebra> = None;
    let mut bgp: Vec<TriplePattern> = Vec::new();
    let mut filters: Vec<Expr> = Vec::new();

    fn flush(current: Option<Algebra>, bgp: &mut Vec<TriplePattern>) -> Option<Algebra> {
        if bgp.is_empty() {
            return current;
        }
        let block = Algebra::Bgp(std::mem::take(bgp));
        Some(match current {
            None => block,
            Some(c) => Algebra::Join(Box::new(c), Box::new(block)),
        })
    }

    for el in &group.elements {
        match el {
            PatternElement::Triple(t) => bgp.push(t.clone()),
            PatternElement::Filter(e) => filters.push(e.clone()),
            PatternElement::Optional(g) => {
                current = flush(current, &mut bgp);
                let right = translate_pattern(g);
                let left = current.unwrap_or(Algebra::Bgp(Vec::new()));
                current = Some(Algebra::LeftJoin(Box::new(left), Box::new(right), None));
            }
            PatternElement::Union(branches) => {
                current = flush(current, &mut bgp);
                let u = Algebra::Union(branches.iter().map(translate_pattern).collect());
                current = Some(match current.take() {
                    None => u,
                    Some(c) => Algebra::Join(Box::new(c), Box::new(u)),
                });
            }
            PatternElement::Group(g) => {
                current = flush(current, &mut bgp);
                let inner = translate_pattern(g);
                current = Some(match current.take() {
                    None => inner,
                    Some(c) => Algebra::Join(Box::new(c), Box::new(inner)),
                });
            }
        }
    }
    let mut plan = flush(current, &mut bgp).unwrap_or(Algebra::Bgp(Vec::new()));
    for f in filters {
        plan = Algebra::Filter(f, Box::new(plan));
    }
    plan
}

/// Lowers a full `SELECT` query to algebra, applying solution modifiers in
/// the standard order: pattern → order → projection → distinct → slice.
pub fn translate(query: &SelectQuery) -> Algebra {
    let mut plan = translate_pattern(&query.pattern);
    if !query.order_by.is_empty() {
        plan = Algebra::OrderBy(query.order_by.clone(), Box::new(plan));
    }
    let projection = query.effective_projection();
    plan = Algebra::Project(projection, Box::new(plan));
    if query.distinct {
        plan = Algebra::Distinct(Box::new(plan));
    }
    if query.limit.is_some() || query.offset.is_some() {
        plan = Algebra::Slice {
            input: Box::new(plan),
            limit: query.limit,
            offset: query.offset.unwrap_or(0),
        };
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn translate_simple_bgp() {
        let q = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z }").unwrap();
        let a = translate(&q);
        match a {
            Algebra::Project(vars, inner) => {
                assert_eq!(vars.len(), 1);
                assert!(matches!(*inner, Algebra::Bgp(ref ts) if ts.len() == 2));
            }
            other => panic!("unexpected algebra: {other:?}"),
        }
    }

    #[test]
    fn filter_wraps_group() {
        let q =
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y . FILTER(?y > 1) }").unwrap();
        let a = translate(&q);
        match a {
            Algebra::Project(_, inner) => assert!(matches!(*inner, Algebra::Filter(_, _))),
            other => panic!("unexpected algebra: {other:?}"),
        }
    }

    #[test]
    fn optional_becomes_left_join() {
        let q = parse_query(
            "SELECT * WHERE { ?x a <http://C> . OPTIONAL { ?x <http://n> ?n } }",
        )
        .unwrap();
        let a = translate_pattern(&q.pattern);
        assert!(matches!(a, Algebra::LeftJoin(_, _, _)));
    }

    #[test]
    fn union_translates_branches() {
        let q = parse_query(
            "SELECT ?x WHERE { { ?x a <http://C> } UNION { ?x a <http://D> } }",
        )
        .unwrap();
        let a = translate_pattern(&q.pattern);
        assert!(matches!(a, Algebra::Union(ref b) if b.len() == 2));
    }

    #[test]
    fn modifiers_nest_in_order() {
        let q = parse_query(
            "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } ORDER BY ?y LIMIT 5",
        )
        .unwrap();
        let a = translate(&q);
        // Slice(Distinct(Project(OrderBy(...))))
        match a {
            Algebra::Slice { input, limit, offset } => {
                assert_eq!(limit, Some(5));
                assert_eq!(offset, 0);
                match *input {
                    Algebra::Distinct(p) => match *p {
                        Algebra::Project(_, o) => {
                            assert!(matches!(*o, Algebra::OrderBy(_, _)))
                        }
                        other => panic!("expected Project, got {other:?}"),
                    },
                    other => panic!("expected Distinct, got {other:?}"),
                }
            }
            other => panic!("expected Slice, got {other:?}"),
        }
    }

    #[test]
    fn algebra_vars() {
        let q = parse_query("SELECT * WHERE { ?x <http://p> ?y . ?y <http://q> ?z }").unwrap();
        let a = translate_pattern(&q.pattern);
        assert_eq!(a.vars().len(), 3);
    }
}
