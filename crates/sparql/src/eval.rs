//! Local SPARQL evaluation against a [`fedlake_rdf::Graph`].
//!
//! This evaluator is complete for the supported subset and serves two
//! roles: it is the execution engine behind SPARQL-endpoint sources in the
//! data lake, and the ground-truth oracle against which the federated
//! engine's answers are checked in tests.

use crate::algebra::{translate, Algebra};
use crate::ast::{Order, OrderKey, SelectQuery, TriplePattern, VarOrTerm};
use crate::binding::{Row, Rows, Var};
use crate::error::SparqlError;
use fedlake_rdf::{Graph, Term};
use std::cmp::Ordering;

/// Evaluates a parsed query against a graph.
pub fn evaluate(query: &SelectQuery, graph: &Graph) -> Result<Rows, SparqlError> {
    let plan = translate(query);
    evaluate_algebra(&plan, graph)
}

/// Evaluates an algebra tree against a graph.
pub fn evaluate_algebra(plan: &Algebra, graph: &Graph) -> Result<Rows, SparqlError> {
    match plan {
        Algebra::Bgp(patterns) => Ok(eval_bgp(patterns, graph, vec![Row::new()])),
        Algebra::Join(l, r) => {
            // When the right side is a BGP, evaluate it bound by the left
            // rows (index nested loop); otherwise hash-join on shared vars.
            let left = evaluate_algebra(l, graph)?;
            if let Algebra::Bgp(patterns) = r.as_ref() {
                Ok(eval_bgp(patterns, graph, left))
            } else {
                let right = evaluate_algebra(r, graph)?;
                Ok(nested_join(&left, &right))
            }
        }
        Algebra::LeftJoin(l, r, cond) => {
            let left = evaluate_algebra(l, graph)?;
            let mut out = Vec::new();
            for lrow in &left {
                let matches: Rows = if let Algebra::Bgp(patterns) = r.as_ref() {
                    eval_bgp(patterns, graph, vec![lrow.clone()])
                } else {
                    evaluate_algebra(r, graph)?
                        .iter()
                        .filter_map(|rrow| lrow.merge(rrow))
                        .collect()
                };
                let kept: Rows = matches
                    .into_iter()
                    .filter(|m| cond.as_ref().is_none_or(|c| c.test(m)))
                    .collect();
                if kept.is_empty() {
                    out.push(lrow.clone());
                } else {
                    out.extend(kept);
                }
            }
            Ok(out)
        }
        Algebra::Filter(expr, inner) => Ok(evaluate_algebra(inner, graph)?
            .into_iter()
            .filter(|row| expr.test(row))
            .collect()),
        Algebra::Union(branches) => {
            let mut out = Vec::new();
            for b in branches {
                out.extend(evaluate_algebra(b, graph)?);
            }
            Ok(out)
        }
        Algebra::Project(vars, inner) => Ok(evaluate_algebra(inner, graph)?
            .into_iter()
            .map(|row| row.project(vars))
            .collect()),
        Algebra::Distinct(inner) => {
            let mut seen = std::collections::BTreeSet::new();
            Ok(evaluate_algebra(inner, graph)?
                .into_iter()
                .filter(|row| seen.insert(row.clone()))
                .collect())
        }
        Algebra::OrderBy(keys, inner) => {
            let mut rows = evaluate_algebra(inner, graph)?;
            sort_rows(&mut rows, keys);
            Ok(rows)
        }
        Algebra::Slice { input, limit, offset } => {
            let rows = evaluate_algebra(input, graph)?;
            Ok(rows
                .into_iter()
                .skip(*offset)
                .take(limit.unwrap_or(usize::MAX))
                .collect())
        }
    }
}

/// Evaluates a BGP seeded with `rows`, via greedy bound-first pattern
/// ordering and index nested-loop extension.
pub fn eval_bgp(patterns: &[TriplePattern], graph: &Graph, rows: Rows) -> Rows {
    if patterns.is_empty() {
        return rows;
    }
    let mut remaining: Vec<&TriplePattern> = patterns.iter().collect();
    let mut bound: Vec<Var> = Vec::new();
    if let Some(first) = rows.first() {
        bound.extend(first.vars().cloned());
    }
    let mut current = rows;
    while !remaining.is_empty() {
        // Pick the most selective next pattern: maximize bound positions.
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| pattern_boundness(t, &bound))
            .expect("remaining is non-empty");
        let pattern = remaining.remove(idx);
        let mut next = Vec::new();
        for row in &current {
            extend_row(pattern, graph, row, &mut next);
        }
        for v in pattern.vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        current = next;
        if current.is_empty() {
            return current;
        }
    }
    current
}

fn pattern_boundness(t: &TriplePattern, bound: &[Var]) -> usize {
    let score = |x: &VarOrTerm| match x {
        VarOrTerm::Term(_) => 2,
        VarOrTerm::Var(v) if bound.contains(v) => 2,
        VarOrTerm::Var(_) => 0,
    };
    score(&t.s) * 4 + score(&t.p) + score(&t.o) * 2
}

/// Extends one row with every match of `pattern` under its bindings.
fn extend_row(pattern: &TriplePattern, graph: &Graph, row: &Row, out: &mut Rows) {
    // Resolve each position to a concrete id (if bound/ground) or None.
    let resolve = |x: &VarOrTerm| -> Resolution {
        match x {
            VarOrTerm::Term(t) => match graph.id(t) {
                Some(id) => Resolution::Bound(id),
                None => Resolution::NoMatch,
            },
            VarOrTerm::Var(v) => match row.get(v) {
                Some(t) => match graph.id(t) {
                    Some(id) => Resolution::Bound(id),
                    None => Resolution::NoMatch,
                },
                None => Resolution::Free(v.clone()),
            },
        }
    };
    let (rs, rp, ro) = (resolve(&pattern.s), resolve(&pattern.p), resolve(&pattern.o));
    if matches!(rs, Resolution::NoMatch)
        || matches!(rp, Resolution::NoMatch)
        || matches!(ro, Resolution::NoMatch)
    {
        return;
    }
    let mut gp = fedlake_rdf::TriplePattern::any();
    if let Resolution::Bound(id) = rs {
        gp = gp.with_s(id);
    }
    if let Resolution::Bound(id) = rp {
        gp = gp.with_p(id);
    }
    if let Resolution::Bound(id) = ro {
        gp = gp.with_o(id);
    }
    for t in graph.match_pattern(&gp) {
        let mut extended = row.clone();
        let mut ok = true;
        let bind = |r: &Resolution, id: fedlake_rdf::TermId, ext: &mut Row| {
            if let Resolution::Free(v) = r {
                let term = graph.term(id).expect("matched id must resolve").clone();
                match ext.get(v) {
                    // Repeated free variable within the pattern, e.g.
                    // `?x <p> ?x` — both occurrences must agree.
                    Some(existing) => {
                        if *existing != term {
                            return false;
                        }
                    }
                    None => ext.bind(v.clone(), term),
                }
            }
            true
        };
        ok &= bind(&rs, t.s, &mut extended);
        ok &= ok && bind(&rp, t.p, &mut extended);
        ok &= ok && bind(&ro, t.o, &mut extended);
        if ok {
            out.push(extended);
        }
    }
}

enum Resolution {
    Bound(fedlake_rdf::TermId),
    Free(Var),
    NoMatch,
}

/// Joins two row sets on their shared variables (nested-loop; inputs are
/// small intermediate results at this level).
fn nested_join(left: &Rows, right: &Rows) -> Rows {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if let Some(m) = l.merge(r) {
                out.push(m);
            }
        }
    }
    out
}

/// Total order on terms for `ORDER BY`: unbound < blanks < IRIs < literals;
/// numeric literals compare numerically, others by lexical form.
pub fn cmp_terms(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => cmp_bound(x, y),
    }
}

fn rank(t: &Term) -> u8 {
    match t {
        Term::Blank(_) => 0,
        Term::Iri(_) => 1,
        Term::Literal(_) => 2,
    }
}

fn cmp_bound(x: &Term, y: &Term) -> Ordering {
    if rank(x) != rank(y) {
        return rank(x).cmp(&rank(y));
    }
    match (x, y) {
        (Term::Literal(a), Term::Literal(b)) => {
            match (a.is_numeric().then(|| a.as_double()).flatten(),
                   b.is_numeric().then(|| b.as_double()).flatten())
            {
                (Some(na), Some(nb)) => na.partial_cmp(&nb).unwrap_or(Ordering::Equal),
                _ => a.lexical.cmp(&b.lexical),
            }
        }
        (Term::Iri(a), Term::Iri(b)) => a.cmp(b),
        (Term::Blank(a), Term::Blank(b)) => a.cmp(b),
        _ => Ordering::Equal,
    }
}

/// Sorts rows by the given keys.
pub fn sort_rows(rows: &mut Rows, keys: &[OrderKey]) {
    rows.sort_by(|a, b| {
        for key in keys {
            let ord = cmp_terms(a.get(&key.var), b.get(&key.var));
            let ord = match key.order {
                Order::Asc => ord,
                Order::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let name = Term::iri("http://ex/name");
        let age = Term::iri("http://ex/age");
        let knows = Term::iri("http://ex/knows");
        let class = Term::iri("http://ex/Person");
        let typ = Term::iri(fedlake_rdf::vocab::rdf::TYPE);
        for (who, n, a) in [("alice", "Alice", 30), ("bob", "Bob", 25), ("carol", "Carol", 35)] {
            let s = Term::iri(format!("http://ex/{who}"));
            g.insert_terms(s.clone(), typ.clone(), class.clone());
            g.insert_terms(s.clone(), name.clone(), Term::literal(n));
            g.insert_terms(s, age.clone(), Term::integer(a));
        }
        g.insert_terms(
            Term::iri("http://ex/alice"),
            knows.clone(),
            Term::iri("http://ex/bob"),
        );
        g.insert_terms(
            Term::iri("http://ex/bob"),
            knows,
            Term::iri("http://ex/carol"),
        );
        g
    }

    fn run(q: &str) -> Rows {
        evaluate(&parse_query(q).unwrap(), &sample()).unwrap()
    }

    #[test]
    fn single_pattern() {
        let rows = run("SELECT ?n WHERE { ?s <http://ex/name> ?n }");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn bgp_join() {
        let rows = run(
            "SELECT ?n ?m WHERE { ?a <http://ex/knows> ?b . ?a <http://ex/name> ?n . ?b <http://ex/name> ?m }",
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn ground_subject() {
        let rows = run("SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }");
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get(&Var::new("n")),
            Some(&Term::literal("Alice"))
        );
    }

    #[test]
    fn absent_ground_term_yields_empty() {
        let rows = run("SELECT ?n WHERE { <http://ex/nobody> <http://ex/name> ?n }");
        assert!(rows.is_empty());
    }

    #[test]
    fn filter_numeric() {
        let rows = run("SELECT ?s WHERE { ?s <http://ex/age> ?a . FILTER(?a > 26) }");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn filter_string() {
        let rows =
            run(r#"SELECT ?s WHERE { ?s <http://ex/name> ?n . FILTER(CONTAINS(?n, "o")) }"#);
        // Bob and Carol contain 'o'.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let rows = run(
            "SELECT ?s ?b WHERE { ?s a <http://ex/Person> . OPTIONAL { ?s <http://ex/knows> ?b } }",
        );
        // alice→bob, bob→carol, carol (no match, kept unbound).
        assert_eq!(rows.len(), 3);
        let unbound = rows
            .iter()
            .filter(|r| !r.is_bound(&Var::new("b")))
            .count();
        assert_eq!(unbound, 1);
    }

    #[test]
    fn union_concatenates() {
        let rows = run(
            r#"SELECT ?n WHERE { { <http://ex/alice> <http://ex/name> ?n } UNION { <http://ex/bob> <http://ex/name> ?n } }"#,
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let rows = run("SELECT DISTINCT ?p WHERE { ?s ?p ?o . }");
        // type, name, age, knows.
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn order_by_numeric() {
        let rows = run(
            "SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY DESC(?a)",
        );
        let ages: Vec<i64> = rows
            .iter()
            .map(|r| {
                r.get(&Var::new("a"))
                    .unwrap()
                    .as_literal()
                    .unwrap()
                    .as_integer()
                    .unwrap()
            })
            .collect();
        assert_eq!(ages, vec![35, 30, 25]);
    }

    #[test]
    fn limit_offset() {
        let rows = run(
            "SELECT ?s WHERE { ?s <http://ex/age> ?a } ORDER BY ?a LIMIT 1 OFFSET 1",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get(&Var::new("s")),
            Some(&Term::iri("http://ex/alice"))
        );
    }

    #[test]
    fn variable_predicate() {
        let rows = run("SELECT ?p WHERE { <http://ex/alice> ?p ?o }");
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut g = sample();
        g.insert_terms(
            Term::iri("http://ex/self"),
            Term::iri("http://ex/knows"),
            Term::iri("http://ex/self"),
        );
        let q = parse_query("SELECT ?x WHERE { ?x <http://ex/knows> ?x }").unwrap();
        let rows = evaluate(&q, &g).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get(&Var::new("x")),
            Some(&Term::iri("http://ex/self"))
        );
    }

    #[test]
    fn projection_drops_other_vars() {
        let rows = run("SELECT ?n WHERE { ?s <http://ex/name> ?n }");
        assert!(rows.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn empty_bgp_yields_unit() {
        let q = parse_query("SELECT * WHERE { }").unwrap();
        let rows = evaluate(&q, &sample()).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].is_empty());
    }
}
