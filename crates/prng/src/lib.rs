//! A tiny deterministic PRNG for the workspace.
//!
//! Everything random in the simulation — gamma-distributed link latencies,
//! synthetic dataset generation, randomized tests — needs reproducible,
//! seedable streams, not cryptographic strength. This crate provides a
//! [splitmix64](https://prng.di.unimi.it/splitmix64.c)-based generator so
//! the workspace builds fully offline with no external dependencies.

use std::ops::{Range, RangeInclusive};

/// A seedable splitmix64 pseudo-random number generator.
///
/// Splitmix64 passes BigCrush, has a full 2^64 period for any seed, and is
/// a handful of arithmetic instructions per draw — more than enough for
/// simulation workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range` (half-open or inclusive integer ranges,
    /// or a half-open `f64` range). Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A range a [`Prng`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

/// Uniform `u64` in `[0, width)` via Lemire-style multiply-shift (the
/// slight bias at 2^64-scale widths is irrelevant for simulation).
fn below(rng: &mut Prng, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, width + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(Prng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(-3..=3);
            assert!((-3..=3).contains(&x));
            let y = r.gen_range(0..7usize);
            assert!(y < 7);
            let z = r.gen_range(i64::MIN..=i64::MAX);
            let _ = z;
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut r = Prng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(50.0..900.0f64);
            assert!((50.0..900.0).contains(&x));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Prng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = Prng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
