//! # fedlake-serve
//!
//! The concurrent serving harness: seeded multi-client workloads driven
//! through [`FederatedEngine::serve`](fedlake_core::FederatedEngine::serve).
//!
//! A [`ServeSpec`] describes the offered load — N clients, a weighted
//! [`Mix`] of Q1–Q5 templates, queries per client, an exponential
//! arrival process, an in-flight bound and optional per-query deadlines.
//! [`build_jobs`] instantiates every template with seeded parameters
//! (see [`workload`]) and plans it once; [`run`] executes the whole load
//! against one engine on a single shared simulated clock and link map,
//! and summarizes the result as a [`ServeReport`] (throughput,
//! p50/p95/p99 latency, Jain fairness).
//!
//! Everything downstream of the seeds is deterministic: the same spec
//! over the same lake reproduces the same jobs, interleavings, answers
//! and report bit for bit. Each job's answer *set* is byte-identical to
//! executing its instantiated query alone (see [`solo_golden`]) — the
//! contention changes when rows arrive, never which rows arrive.

pub mod report;
pub mod workload;

pub use report::ServeReport;
pub use workload::{InstantiatedQuery, Mix};

use fedlake_core::serve::{ServeConfig, ServeJob, ServeOutcome};
use fedlake_core::{DataLake, FedError, FedResult, FederatedEngine, PlanConfig};
use fedlake_prng::Prng;
use fedlake_sparql::parser::parse_query;
use std::time::Duration;

/// The offered load of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Client sessions issuing queries.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Template mix the clients draw from.
    pub mix: Mix,
    /// Workload + arrival seed (independent of the engine's link seed).
    pub seed: u64,
    /// Mean exponential inter-arrival gap; `ZERO` = closed batch at t=0.
    pub mean_interarrival: Duration,
    /// Admission bound (0 = unbounded).
    pub max_in_flight: usize,
    /// Default per-query deadline, relative to arrival.
    pub deadline: Option<Duration>,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            clients: 8,
            queries_per_client: 2,
            mix: Mix::default(),
            seed: 7,
            mean_interarrival: Duration::from_millis(5),
            max_in_flight: 8,
            deadline: None,
        }
    }
}

impl ServeSpec {
    /// The serve-loop configuration this spec implies.
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            seed: self.seed,
            max_in_flight: self.max_in_flight,
            mean_interarrival: self.mean_interarrival,
            deadline: self.deadline,
        }
    }
}

/// One complete serve run: the instantiated jobs, the raw outcome, and
/// its summary report.
#[derive(Debug)]
pub struct ServeRun {
    /// The planned jobs, in job order (parallel to `outcome.outcomes`).
    pub jobs: Vec<ServeJob>,
    /// The instantiated queries, in job order (parallel to
    /// `outcome.outcomes`).
    pub instances: Vec<InstantiatedQuery>,
    /// Per-job outcomes and the server rollup.
    pub outcome: ServeOutcome,
    /// The summary report.
    pub report: ServeReport,
}

impl ServeRun {
    /// The run's slow-query log: breaching queries from the flight
    /// recording, enriched with each session's trace report (per-operator
    /// rows/q-error, per-link waits) when tracing was on. Empty when the
    /// recorder was off. Records match outcomes by `(client, label)` —
    /// labels carry their instance parameters, so the pairing is as
    /// unambiguous as the workload itself.
    pub fn slow_queries(
        &self,
        cfg: &fedlake_core::SlowLogConfig,
    ) -> Vec<fedlake_core::SlowQueryRecord> {
        let Some(recording) = &self.outcome.recording else { return Vec::new() };
        let mut records = fedlake_core::slow_queries(recording, cfg);
        for rec in &mut records {
            if let Some(outcome) = self
                .outcome
                .outcomes
                .iter()
                .find(|o| o.client == rec.client && o.label == rec.label)
            {
                if let Some(trace) = &outcome.obs {
                    rec.attach_trace(trace);
                }
            }
        }
        records
    }

    /// Runs the SLO watchdog over the run's flight recording. `None` when
    /// the recorder was off.
    pub fn watchdog(
        &self,
        cfg: &fedlake_core::WatchdogConfig,
    ) -> Option<fedlake_core::WatchdogReport> {
        self.outcome.recording.as_ref().map(|r| fedlake_core::watch(r, cfg))
    }
}

/// FNV-1a fold of per-job coordinates into one template seed.
fn job_seed(seed: u64, client: usize, slot: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in [client as u64, slot as u64] {
        for byte in b.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Instantiates and plans the spec's jobs against `engine`.
///
/// Jobs are ordered round-robin across clients (slot 0 of every client,
/// then slot 1, …), which is also their arrival order; each job's
/// template draw and parameters come from an independent seed derived
/// from `(spec.seed, client, slot)`, so adding clients never reshuffles
/// existing clients' queries.
pub fn build_jobs(
    engine: &FederatedEngine,
    spec: &ServeSpec,
) -> Result<(Vec<ServeJob>, Vec<InstantiatedQuery>), FedError> {
    let mut jobs = Vec::with_capacity(spec.clients * spec.queries_per_client);
    let mut instances = Vec::with_capacity(jobs.capacity());
    for slot in 0..spec.queries_per_client {
        for client in 0..spec.clients {
            let mut rng = Prng::seed_from_u64(job_seed(spec.seed, client, slot));
            let id = spec.mix.draw(&mut rng).to_string();
            let inst = workload::instantiate(&id, &mut rng)
                .ok_or_else(|| FedError::Internal(format!("no template for {id}")))?;
            let ast = parse_query(&inst.sparql)?;
            let (planned, origin) = engine.plan_cached(&ast)?;
            jobs.push(ServeJob {
                client,
                label: inst.label.clone(),
                planned,
                deadline: None,
                cached: origin.cached,
            });
            instances.push(inst);
        }
    }
    Ok((jobs, instances))
}

/// Builds, serves and summarizes the spec's load against `engine`.
pub fn run(engine: &FederatedEngine, spec: &ServeSpec) -> Result<ServeRun, FedError> {
    let (jobs, instances) = build_jobs(engine, spec)?;
    let outcome = engine.serve(&jobs, &spec.serve_config())?;
    let report = ServeReport::from_outcome(&outcome);
    Ok(ServeRun { jobs, instances, outcome, report })
}

/// Executes one instantiated query alone on a fresh engine over a clone
/// of `lake` — the golden a served query's answer set must byte-match.
pub fn solo_golden(
    lake: &DataLake,
    config: PlanConfig,
    sparql: &str,
) -> Result<FedResult, FedError> {
    FederatedEngine::new(lake.clone(), config).execute_sparql(sparql)
}

/// Answers as sorted SPARQL CSV — the canonical byte-comparable form
/// shared with the chaos and equivalence suites.
pub fn sorted_csv(vars: &[fedlake_sparql::binding::Var], rows: &[fedlake_sparql::binding::Row]) -> String {
    let mut rows = rows.to_vec();
    rows.sort_by_cached_key(|row| row.to_string());
    fedlake_core::results::to_sparql_csv(vars, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_datagen::{build_lake_with, LakeConfig};
    use fedlake_netsim::NetworkProfile;
    use fedlake_core::PlanMode;

    #[test]
    fn build_jobs_is_deterministic_and_round_robin() {
        let spec = ServeSpec {
            clients: 3,
            queries_per_client: 2,
            seed: 11,
            ..Default::default()
        };
        let lake_cfg = LakeConfig { scale: 0.02, ..Default::default() };
        let lake = build_lake_with(&lake_cfg, &spec.mix.datasets());
        let engine = FederatedEngine::new(
            lake,
            PlanConfig::new(PlanMode::AWARE, NetworkProfile::NO_DELAY),
        );
        let (a, ia) = build_jobs(&engine, &spec).unwrap();
        let (b, ib) = build_jobs(&engine, &spec).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(a.len(), 6);
        assert_eq!(a.iter().map(|j| j.client).collect::<Vec<_>>(), vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(
            a.iter().map(|j| j.label.clone()).collect::<Vec<_>>(),
            b.iter().map(|j| j.label.clone()).collect::<Vec<_>>()
        );
    }
}
