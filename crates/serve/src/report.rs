//! The latency/throughput/fairness report of one serve run.
//!
//! All durations are integer simulated nanoseconds and the two floats
//! (`qps_sim`, `jain`) are formatted with fixed precision from the same
//! deterministic inputs, so rendering a report is bit-stable across
//! reruns of the same seed — the property `BENCH_serve.json` is gated on.

use fedlake_core::obs::nearest_rank;
use fedlake_core::serve::ServeOutcome;
use std::collections::BTreeMap;

/// Summary of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Distinct clients that submitted jobs.
    pub clients: usize,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that returned their complete answer set.
    pub completed: u64,
    /// Jobs that failed on their deadline.
    pub timeouts: u64,
    /// Jobs that returned partial answers under `degraded_ok`.
    pub degraded: u64,
    /// Jobs that failed hard for another reason (exhausted retries).
    pub failed: u64,
    /// Total answer rows across all jobs.
    pub answers: u64,
    /// Simulated time at which the last job finished, in ns.
    pub makespan_ns: u64,
    /// Jobs per simulated second.
    pub qps_sim: f64,
    /// Latency percentiles (arrival → finish, queueing included), in ns.
    pub p50_ns: u64,
    /// 95th percentile latency, ns.
    pub p95_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// Jain fairness index over per-client mean latency:
    /// `(Σx)² / (n·Σx²)` — 1.0 when every client experiences the same
    /// mean latency, approaching `1/n` as one client absorbs all delay.
    pub jain: f64,
}

impl ServeReport {
    /// Summarizes one run.
    pub fn from_outcome(outcome: &ServeOutcome) -> ServeReport {
        let mut latencies: Vec<u64> =
            outcome.outcomes.iter().map(|o| o.latency.as_nanos() as u64).collect();
        latencies.sort_unstable();
        let mut per_client: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        for o in &outcome.outcomes {
            let e = per_client.entry(o.client).or_insert((0, 0));
            e.0 += o.latency.as_nanos() as u64;
            e.1 += 1;
        }
        let means: Vec<f64> =
            per_client.values().map(|(sum, n)| *sum as f64 / (*n).max(1) as f64).collect();
        let jain = if means.is_empty() || means.iter().all(|m| *m == 0.0) {
            1.0
        } else {
            let s: f64 = means.iter().sum();
            let s2: f64 = means.iter().map(|m| m * m).sum();
            (s * s) / (means.len() as f64 * s2)
        };
        let makespan_ns = outcome.makespan.as_nanos() as u64;
        ServeReport {
            clients: per_client.len(),
            jobs: outcome.outcomes.len(),
            completed: outcome.metrics.counter("serve.completed"),
            timeouts: outcome.metrics.counter("serve.timeouts"),
            degraded: outcome.metrics.counter("serve.degraded"),
            failed: outcome.metrics.counter("serve.failed"),
            answers: outcome.metrics.counter("serve.answers"),
            makespan_ns,
            qps_sim: if makespan_ns == 0 {
                0.0
            } else {
                outcome.outcomes.len() as f64 * 1e9 / makespan_ns as f64
            },
            p50_ns: nearest_rank(&latencies, 0.50),
            p95_ns: nearest_rank(&latencies, 0.95),
            p99_ns: nearest_rank(&latencies, 0.99),
            jain,
        }
    }

    /// One JSON object (no trailing newline), bit-stable for a given run.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clients\": {}, \"jobs\": {}, \"completed\": {}, \"timeouts\": {}, \
             \"degraded\": {}, \"failed\": {}, \"answers\": {}, \"makespan_ns\": {}, \
             \"qps_sim\": {:.6}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
             \"jain\": {:.6}}}",
            self.clients,
            self.jobs,
            self.completed,
            self.timeouts,
            self.degraded,
            self.failed,
            self.answers,
            self.makespan_ns,
            self.qps_sim,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.jain,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        // The report's percentiles are the shared `nearest_rank` — assert
        // the exact values it must produce so a drift in the helper (or a
        // reintroduced private copy) fails here.
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&s, 0.50), 50);
        assert_eq!(nearest_rank(&s, 0.95), 95);
        assert_eq!(nearest_rank(&s, 0.99), 99);
        assert_eq!(nearest_rank(&s, 1.0), 100);
        assert_eq!(nearest_rank(&[42], 0.5), 42);
        assert_eq!(nearest_rank(&[], 0.5), 0);
    }
}
