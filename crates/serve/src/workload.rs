//! Seeded workload instantiation: Q1–Q5 templates with
//! randomized-but-reproducible parameters.
//!
//! Each template takes the stock workload query from
//! [`fedlake_datagen::workload`] and substitutes its ground
//! instantiation with a seeded draw from the generator's own value
//! domains (`crates/datagen/src/datasets.rs`), so every variant is a
//! query the lake can actually answer and two runs with the same seed
//! instantiate the same variants. The parameter domains deliberately
//! span selectivities: a serve mix stresses the engine with cheap and
//! expensive instances of the same plan shape.

use fedlake_datagen::workload;
use fedlake_prng::Prng;

/// One instantiated workload query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantiatedQuery {
    /// The template it came from (`Q1` … `Q5`).
    pub base: &'static str,
    /// Template plus parameters, e.g. `Q3[cat-12]`.
    pub label: String,
    /// The instantiated SPARQL text.
    pub sparql: String,
    /// Datasets the query touches (for subset lakes).
    pub datasets: &'static [&'static str],
}

/// Weighted draw mirroring the data generator's `pick`.
fn pick<'a>(rng: &mut Prng, options: &[(&'a str, u32)]) -> &'a str {
    let total: u64 = options.iter().map(|(_, w)| *w as u64).sum();
    let mut x = rng.gen_range(0..total);
    for (v, w) in options {
        if x < *w as u64 {
            return v;
        }
        x -= *w as u64;
    }
    options.last().expect("non-empty options").0
}

/// Instantiates template `id` with parameters drawn from `rng`.
/// `None` for ids without a template (only `Q1` … `Q5` are templated).
pub fn instantiate(id: &str, rng: &mut Prng) -> Option<InstantiatedQuery> {
    match id {
        // ChEBI name-substring filter: the suffix domain of the compound
        // name generator ("acid" ~80 % of rows, "oxide" ~5 %).
        "Q1" => {
            let q = workload::q1();
            let kind =
                pick(rng, &[("acid", 40), ("ester", 25), ("amine", 20), ("oxide", 15)]);
            Some(InstantiatedQuery {
                base: "Q1",
                label: format!("Q1[{kind}]"),
                sparql: q.sparql.replace("\"acid\"", &format!("\"{kind}\"")),
                datasets: q.datasets,
            })
        }
        // DrugBank target action: ground term inside the BGP.
        "Q2" => {
            let q = workload::q2();
            let action =
                pick(rng, &[("inhibitor", 40), ("agonist", 35), ("antagonist", 25)]);
            Some(InstantiatedQuery {
                base: "Q2",
                label: format!("Q2[{action}]"),
                sparql: q.sparql.replace("\"inhibitor\"", &format!("\"{action}\"")),
                datasets: q.datasets,
            })
        }
        // LinkedCT category: the generator emits `cat-0` … `cat-49` at
        // every scale (`ncat = 50.max(n / 40)`), so any k < 50 is a live
        // index-lookup target.
        "Q3" => {
            let q = workload::q3();
            let k = rng.gen_range(0u64..50);
            Some(InstantiatedQuery {
                base: "Q3",
                label: format!("Q3[cat-{k}]"),
                sparql: q.sparql.replace("\"cat-7\"", &format!("\"cat-{k}\"")),
                datasets: q.datasets,
            })
        }
        // SIDER frequency: skewed, never indexed.
        "Q4" => {
            let q = workload::q4();
            let freq = pick(rng, &[("common", 30), ("rare", 35), ("very rare", 35)]);
            Some(InstantiatedQuery {
                base: "Q4",
                label: format!("Q4[{freq}]"),
                sparql: q.sparql.replace("\"very rare\"", &format!("\"{freq}\"")),
                datasets: q.datasets,
            })
        }
        // TCGA expression threshold × Diseasome class: numeric range and
        // categorical equality vary independently.
        "Q5" => {
            let q = workload::q5();
            let thr = 2 + rng.gen_range(0u64..4); // 2.0 … 5.0
            let cl = pick(
                rng,
                &[
                    ("Cancer", 25),
                    ("Metabolic", 20),
                    ("Neurological", 20),
                    ("Cardiovascular", 15),
                    ("Immunological", 10),
                    ("Unclassified", 10),
                ],
            );
            Some(InstantiatedQuery {
                base: "Q5",
                label: format!("Q5[>{thr}.0,{cl}]"),
                sparql: q
                    .sparql
                    .replace("?v > 3.0", &format!("?v > {thr}.0"))
                    .replace("\"Cancer\"", &format!("\"{cl}\"")),
                datasets: q.datasets,
            })
        }
        _ => None,
    }
}

/// A weighted mix of workload templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix(pub Vec<(String, u32)>);

impl Default for Mix {
    /// Q1 … Q5, equally weighted.
    fn default() -> Self {
        Mix(["Q1", "Q2", "Q3", "Q4", "Q5"]
            .iter()
            .map(|q| (q.to_string(), 1))
            .collect())
    }
}

impl Mix {
    /// Parses `Q1=2,Q3=1` (weight 1 when omitted: `Q1,Q3`).
    pub fn parse(s: &str) -> Result<Mix, String> {
        let mut out = Vec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (id, w) = match part.split_once('=') {
                Some((id, w)) => {
                    (id.trim(), w.trim().parse::<u32>().map_err(|e| format!("{part}: {e}"))?)
                }
                None => (part, 1),
            };
            let id = id.to_ascii_uppercase();
            if !matches!(id.as_str(), "Q1" | "Q2" | "Q3" | "Q4" | "Q5") {
                return Err(format!("{id}: not a templated workload query (Q1…Q5)"));
            }
            if w == 0 {
                return Err(format!("{id}: weight must be positive"));
            }
            out.push((id, w));
        }
        if out.is_empty() {
            return Err("empty mix".into());
        }
        Ok(Mix(out))
    }

    /// Draws one template id.
    pub fn draw(&self, rng: &mut Prng) -> &str {
        let total: u64 = self.0.iter().map(|(_, w)| *w as u64).sum();
        let mut x = rng.gen_range(0..total);
        for (id, w) in &self.0 {
            if x < *w as u64 {
                return id;
            }
            x -= *w as u64;
        }
        &self.0.last().expect("non-empty mix").0
    }

    /// All dataset ids the mix can touch, deduplicated in first-use order
    /// (the lake a serve run needs).
    pub fn datasets(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for (id, _) in &self.0 {
            if let Some(q) = workload::by_id(id) {
                for d in q.datasets {
                    if !out.contains(d) {
                        out.push(d);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiation_is_seeded() {
        for id in ["Q1", "Q2", "Q3", "Q4", "Q5"] {
            let a = instantiate(id, &mut Prng::seed_from_u64(9)).unwrap();
            let b = instantiate(id, &mut Prng::seed_from_u64(9)).unwrap();
            assert_eq!(a, b);
            assert!(a.label.starts_with(id));
            fedlake_sparql::parser::parse_query(&a.sparql).expect("variant parses");
        }
        assert!(instantiate("QM", &mut Prng::seed_from_u64(9)).is_none());
    }

    #[test]
    fn variants_cover_the_domain() {
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..64 {
            seen.insert(instantiate("Q3", &mut Prng::seed_from_u64(s)).unwrap().label);
        }
        assert!(seen.len() > 8, "64 seeds drew only {} Q3 variants", seen.len());
    }

    #[test]
    fn mix_parses() {
        let m = Mix::parse("Q1=2, q3").unwrap();
        assert_eq!(m.0, vec![("Q1".to_string(), 2), ("Q3".to_string(), 1)]);
        assert!(Mix::parse("Q9").is_err());
        assert!(Mix::parse("").is_err());
        assert!(Mix::parse("Q1=0").is_err());
        let ds = m.datasets();
        assert!(ds.contains(&"chebi") && ds.contains(&"linkedct"));
    }
}
