//! Deterministic fault injection for simulated links.
//!
//! The paper's network settings only make links *slow*; this module makes
//! them *unreliable* as well, in the way real federation engines (FedX,
//! ANAPSID) must cope with: messages are lost, payloads arrive truncated,
//! latency spikes, and sources suffer outages lasting several messages.
//!
//! Faults are driven by the same seeded [`fedlake_prng`] stream as the
//! link's latency sampling, so a `(seed, FaultPlan)` pair fully determines
//! the fault schedule: identical runs observe identical faults at
//! identical attempts, which is what makes chaos testing reproducible.
//! A link with [`FaultPlan::NONE`] consumes exactly the same RNG stream as
//! a pre-fault link, so fault-free runs are bit-identical to the seed
//! behaviour.

use std::fmt;

/// A fault observed on one message attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The message was lost in transit; the receiver times out waiting.
    Dropped,
    /// The message arrived but its payload was truncated and is unusable.
    /// Unlike a drop, the transit delay was already paid.
    Truncated,
    /// The source is down and does not answer at all.
    SourceDown,
}

impl fmt::Display for LinkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkFault::Dropped => write!(f, "message dropped"),
            LinkFault::Truncated => write!(f, "result stream truncated"),
            LinkFault::SourceDown => write!(f, "source outage"),
        }
    }
}

/// A per-link fault schedule.
///
/// Probabilities apply independently per message attempt, in priority
/// order drop > truncate > spike (a single uniform draw is partitioned,
/// so at most one fires per attempt). The outage window is positional:
/// attempts `outage_after .. outage_after + outage_len` fail with
/// [`LinkFault::SourceDown`] regardless of the probabilistic faults, which
/// models an N-message outage whose recoverability depends on the retry
/// policy's attempt budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a message attempt is dropped in transit.
    pub drop_prob: f64,
    /// Probability a message attempt arrives truncated.
    pub truncate_prob: f64,
    /// Probability a message attempt suffers a latency spike.
    pub spike_prob: f64,
    /// Multiplier applied to the sampled delay during a spike.
    pub spike_factor: f64,
    /// Attempt index (0-based, per link) at which the source goes down.
    pub outage_after: Option<u64>,
    /// Number of consecutive attempts that fail during the outage.
    pub outage_len: u64,
}

impl FaultPlan {
    /// No faults: the link behaves exactly like a pre-fault link.
    pub const NONE: FaultPlan = FaultPlan {
        drop_prob: 0.0,
        truncate_prob: 0.0,
        spike_prob: 0.0,
        spike_factor: 1.0,
        outage_after: None,
        outage_len: 0,
    };

    /// True when any fault can ever fire. Inactive plans skip the
    /// per-attempt fault draw entirely, preserving the RNG stream.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.truncate_prob > 0.0
            || self.spike_prob > 0.0
            || (self.outage_after.is_some() && self.outage_len > 0)
    }

    /// True when `attempt` falls inside the outage window.
    pub fn in_outage(&self, attempt: u64) -> bool {
        match self.outage_after {
            Some(start) => attempt >= start && attempt - start < self.outage_len,
            None => false,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Fault plans for a whole federation: a uniform default plus per-source
/// overrides, so a chaos schedule can make exactly one endpoint flaky
/// while the rest of the lake stays healthy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlans {
    /// Plan applied to every source without an override.
    pub default: FaultPlan,
    /// Per-source-id overrides (keyed by the lake's source ids).
    pub overrides: std::collections::BTreeMap<String, FaultPlan>,
}

impl FaultPlans {
    /// The same plan on every link (the pre-per-source behaviour).
    pub fn uniform(plan: FaultPlan) -> Self {
        FaultPlans { default: plan, overrides: std::collections::BTreeMap::new() }
    }

    /// Adds (or replaces) the plan for one source id.
    pub fn with_source(mut self, source_id: impl Into<String>, plan: FaultPlan) -> Self {
        self.overrides.insert(source_id.into(), plan);
        self
    }

    /// The plan in effect for `source_id`.
    pub fn for_source(&self, source_id: &str) -> FaultPlan {
        self.overrides.get(source_id).copied().unwrap_or(self.default)
    }

    /// True when any source can ever observe a fault.
    pub fn is_active(&self) -> bool {
        self.default.is_active() || self.overrides.values().any(FaultPlan::is_active)
    }
}

impl From<FaultPlan> for FaultPlans {
    fn from(plan: FaultPlan) -> Self {
        FaultPlans::uniform(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultPlan::NONE.is_active());
        assert!(!FaultPlan::default().is_active());
        assert!(!FaultPlan::NONE.in_outage(0));
    }

    #[test]
    fn any_probability_activates() {
        assert!(FaultPlan { drop_prob: 0.1, ..FaultPlan::NONE }.is_active());
        assert!(FaultPlan { truncate_prob: 0.1, ..FaultPlan::NONE }.is_active());
        assert!(FaultPlan { spike_prob: 0.1, ..FaultPlan::NONE }.is_active());
        assert!(FaultPlan {
            outage_after: Some(0),
            outage_len: 1,
            ..FaultPlan::NONE
        }
        .is_active());
        // A zero-length outage never fires.
        assert!(!FaultPlan { outage_after: Some(0), ..FaultPlan::NONE }.is_active());
    }

    #[test]
    fn outage_window_is_half_open() {
        let p = FaultPlan { outage_after: Some(3), outage_len: 2, ..FaultPlan::NONE };
        assert!(!p.in_outage(2));
        assert!(p.in_outage(3));
        assert!(p.in_outage(4));
        assert!(!p.in_outage(5));
    }

    #[test]
    fn plans_override_per_source() {
        let flaky = FaultPlan { drop_prob: 0.5, ..FaultPlan::NONE };
        let plans = FaultPlans::uniform(FaultPlan::NONE).with_source("tcga", flaky);
        assert_eq!(plans.for_source("tcga"), flaky);
        assert_eq!(plans.for_source("chebi"), FaultPlan::NONE);
        assert!(plans.is_active());
        assert!(!FaultPlans::default().is_active());
        let uniform: FaultPlans = flaky.into();
        assert_eq!(uniform.for_source("anything"), flaky);
    }

    #[test]
    fn fault_display() {
        assert_eq!(LinkFault::Dropped.to_string(), "message dropped");
        assert_eq!(LinkFault::Truncated.to_string(), "result stream truncated");
        assert_eq!(LinkFault::SourceDown.to_string(), "source outage");
    }
}
