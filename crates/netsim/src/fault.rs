//! Deterministic fault injection for simulated links.
//!
//! The paper's network settings only make links *slow*; this module makes
//! them *unreliable* as well, in the way real federation engines (FedX,
//! ANAPSID) must cope with: messages are lost, payloads arrive truncated,
//! latency spikes, and sources suffer outages lasting several messages.
//!
//! Faults are driven by the same seeded [`fedlake_prng`] stream as the
//! link's latency sampling, so a `(seed, FaultPlan)` pair fully determines
//! the fault schedule: identical runs observe identical faults at
//! identical attempts, which is what makes chaos testing reproducible.
//! A link with [`FaultPlan::NONE`] consumes exactly the same RNG stream as
//! a pre-fault link, so fault-free runs are bit-identical to the seed
//! behaviour.

use std::fmt;

/// A fault observed on one message attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The message was lost in transit; the receiver times out waiting.
    Dropped,
    /// The message arrived but its payload was truncated and is unusable.
    /// Unlike a drop, the transit delay was already paid.
    Truncated,
    /// The source is down and does not answer at all.
    SourceDown,
}

impl fmt::Display for LinkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkFault::Dropped => write!(f, "message dropped"),
            LinkFault::Truncated => write!(f, "result stream truncated"),
            LinkFault::SourceDown => write!(f, "source outage"),
        }
    }
}

/// A per-link fault schedule.
///
/// Probabilities apply independently per message attempt, in priority
/// order drop > truncate > spike (a single uniform draw is partitioned,
/// so at most one fires per attempt). The outage window is positional:
/// attempts `outage_after .. outage_after + outage_len` fail with
/// [`LinkFault::SourceDown`] regardless of the probabilistic faults, which
/// models an N-message outage whose recoverability depends on the retry
/// policy's attempt budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a message attempt is dropped in transit.
    pub drop_prob: f64,
    /// Probability a message attempt arrives truncated.
    pub truncate_prob: f64,
    /// Probability a message attempt suffers a latency spike.
    pub spike_prob: f64,
    /// Multiplier applied to the sampled delay during a spike.
    pub spike_factor: f64,
    /// Attempt index (0-based, per link) at which the source goes down.
    pub outage_after: Option<u64>,
    /// Number of consecutive attempts that fail during the outage.
    pub outage_len: u64,
}

impl FaultPlan {
    /// No faults: the link behaves exactly like a pre-fault link.
    pub const NONE: FaultPlan = FaultPlan {
        drop_prob: 0.0,
        truncate_prob: 0.0,
        spike_prob: 0.0,
        spike_factor: 1.0,
        outage_after: None,
        outage_len: 0,
    };

    /// True when any fault can ever fire. Inactive plans skip the
    /// per-attempt fault draw entirely, preserving the RNG stream.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.truncate_prob > 0.0
            || self.spike_prob > 0.0
            || (self.outage_after.is_some() && self.outage_len > 0)
    }

    /// True when `attempt` falls inside the outage window.
    pub fn in_outage(&self, attempt: u64) -> bool {
        match self.outage_after {
            Some(start) => attempt >= start && attempt - start < self.outage_len,
            None => false,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// A correlated outage: several links go down over the *same* simulated
/// window.
///
/// The fault model is positional (outages are windows of per-link attempt
/// indices), so "the same window" means every member link observes the
/// outage starting at the same attempt index — the shared start is drawn
/// deterministically from the group's own seed, independent of the member
/// links' RNG streams. This models a shared failure domain (one rack, one
/// provider region) taking all replicas of a source down together, the
/// scenario replica failover cannot rescue.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageGroup {
    /// Link ids (source or replica-endpoint ids) that go down together.
    pub members: Vec<String>,
    /// Seed the shared outage start is drawn from.
    pub seed: u64,
    /// The start attempt is drawn uniformly from `0..window` (a window of
    /// zero or one pins the outage to attempt 0).
    pub window: u64,
    /// Consecutive attempts each member fails for (`u64::MAX` = forever).
    pub len: u64,
}

impl OutageGroup {
    /// The attempt index at which every member's outage begins — a pure
    /// function of the group's seed, so re-runs observe the same window.
    pub fn start(&self) -> u64 {
        let mut rng = fedlake_prng::Prng::seed_from_u64(self.seed ^ 0x9E6D_62C9_4D0C_F5A3);
        rng.next_u64() % self.window.max(1)
    }

    /// True when `link_id` belongs to this group.
    pub fn applies_to(&self, link_id: &str) -> bool {
        self.members.iter().any(|m| m == link_id)
    }
}

/// Fault plans for a whole federation: a uniform default plus per-source
/// overrides, so a chaos schedule can make exactly one endpoint flaky
/// while the rest of the lake stays healthy. Correlated [`OutageGroup`]s
/// overlay a shared outage window on all their member links on top of
/// whatever per-link plan resolved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlans {
    /// Plan applied to every source without an override.
    pub default: FaultPlan,
    /// Per-source-id overrides (keyed by the lake's source ids; replica
    /// endpoints may be keyed individually or fall back to their logical
    /// source's override).
    pub overrides: std::collections::BTreeMap<String, FaultPlan>,
    /// Correlated outages, applied after override resolution. The first
    /// group containing a link wins.
    pub groups: Vec<OutageGroup>,
}

impl FaultPlans {
    /// The same plan on every link (the pre-per-source behaviour).
    pub fn uniform(plan: FaultPlan) -> Self {
        FaultPlans {
            default: plan,
            overrides: std::collections::BTreeMap::new(),
            groups: Vec::new(),
        }
    }

    /// Adds (or replaces) the plan for one source id.
    pub fn with_source(mut self, source_id: impl Into<String>, plan: FaultPlan) -> Self {
        self.overrides.insert(source_id.into(), plan);
        self
    }

    /// Adds a correlated outage group.
    pub fn with_group(mut self, group: OutageGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// The plan in effect for `source_id`.
    pub fn for_source(&self, source_id: &str) -> FaultPlan {
        self.for_endpoint(source_id, source_id)
    }

    /// The plan in effect for one replica endpoint of a logical source:
    /// an endpoint-keyed override wins, then the logical source's
    /// override, then the default — after which the first outage group
    /// containing either id overlays its shared outage window.
    pub fn for_endpoint(&self, endpoint: &str, logical: &str) -> FaultPlan {
        let mut plan = self
            .overrides
            .get(endpoint)
            .or_else(|| self.overrides.get(logical))
            .copied()
            .unwrap_or(self.default);
        for g in &self.groups {
            if g.applies_to(endpoint) || g.applies_to(logical) {
                plan.outage_after = Some(g.start());
                plan.outage_len = g.len;
                break;
            }
        }
        plan
    }

    /// True when any source can ever observe a fault.
    pub fn is_active(&self) -> bool {
        self.default.is_active()
            || self.overrides.values().any(FaultPlan::is_active)
            || self.groups.iter().any(|g| g.len > 0 && !g.members.is_empty())
    }
}

impl From<FaultPlan> for FaultPlans {
    fn from(plan: FaultPlan) -> Self {
        FaultPlans::uniform(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultPlan::NONE.is_active());
        assert!(!FaultPlan::default().is_active());
        assert!(!FaultPlan::NONE.in_outage(0));
    }

    #[test]
    fn any_probability_activates() {
        assert!(FaultPlan { drop_prob: 0.1, ..FaultPlan::NONE }.is_active());
        assert!(FaultPlan { truncate_prob: 0.1, ..FaultPlan::NONE }.is_active());
        assert!(FaultPlan { spike_prob: 0.1, ..FaultPlan::NONE }.is_active());
        assert!(FaultPlan {
            outage_after: Some(0),
            outage_len: 1,
            ..FaultPlan::NONE
        }
        .is_active());
        // A zero-length outage never fires.
        assert!(!FaultPlan { outage_after: Some(0), ..FaultPlan::NONE }.is_active());
    }

    #[test]
    fn outage_window_is_half_open() {
        let p = FaultPlan { outage_after: Some(3), outage_len: 2, ..FaultPlan::NONE };
        assert!(!p.in_outage(2));
        assert!(p.in_outage(3));
        assert!(p.in_outage(4));
        assert!(!p.in_outage(5));
    }

    #[test]
    fn plans_override_per_source() {
        let flaky = FaultPlan { drop_prob: 0.5, ..FaultPlan::NONE };
        let plans = FaultPlans::uniform(FaultPlan::NONE).with_source("tcga", flaky);
        assert_eq!(plans.for_source("tcga"), flaky);
        assert_eq!(plans.for_source("chebi"), FaultPlan::NONE);
        assert!(plans.is_active());
        assert!(!FaultPlans::default().is_active());
        let uniform: FaultPlans = flaky.into();
        assert_eq!(uniform.for_source("anything"), flaky);
    }

    #[test]
    fn endpoint_resolution_falls_back_to_logical_override() {
        let flaky = FaultPlan { drop_prob: 0.5, ..FaultPlan::NONE };
        let targeted = FaultPlan { truncate_prob: 0.9, ..FaultPlan::NONE };
        let plans = FaultPlans::uniform(FaultPlan::NONE)
            .with_source("tcga", flaky)
            .with_source("tcga#r1", targeted);
        // Endpoint override wins over the logical source's override.
        assert_eq!(plans.for_endpoint("tcga#r1", "tcga"), targeted);
        // A replica without its own override inherits the logical plan.
        assert_eq!(plans.for_endpoint("tcga#r0", "tcga"), flaky);
        assert_eq!(plans.for_endpoint("chebi#r0", "chebi"), FaultPlan::NONE);
    }

    #[test]
    fn outage_groups_share_one_window() {
        let g = OutageGroup {
            members: vec!["a#r0".into(), "a#r1".into()],
            seed: 7,
            window: 50,
            len: 3,
        };
        let start = g.start();
        assert!(start < 50);
        assert_eq!(g.start(), start, "the shared start is a pure function of the seed");
        let plans = FaultPlans::default().with_group(g.clone());
        assert!(plans.is_active());
        for member in ["a#r0", "a#r1"] {
            let plan = plans.for_endpoint(member, "a");
            assert_eq!(plan.outage_after, Some(start), "every member shares the window");
            assert_eq!(plan.outage_len, 3);
        }
        // Non-members are untouched.
        assert_eq!(plans.for_endpoint("b#r0", "b"), FaultPlan::NONE);
        // A window of 1 pins the outage to attempt 0 regardless of seed.
        let pinned = OutageGroup { members: vec!["x".into()], seed: 999, window: 1, len: 1 };
        assert_eq!(pinned.start(), 0);
        // Matching on the logical id downs all of its replicas at once.
        let by_logical =
            FaultPlans::default().with_group(OutageGroup {
                members: vec!["a".into()],
                seed: 1,
                window: 1,
                len: 2,
            });
        assert_eq!(by_logical.for_endpoint("a#r1", "a").outage_after, Some(0));
    }

    #[test]
    fn fault_display() {
        assert_eq!(LinkFault::Dropped.to_string(), "message dropped");
        assert_eq!(LinkFault::Truncated.to_string(), "result stream truncated");
        assert_eq!(LinkFault::SourceDown.to_string(), "source outage");
    }
}
