//! # fedlake-netsim
//!
//! Network and cost simulation for the data-lake experiments.
//!
//! The paper simulates network conditions *inside the SQL wrapper*: each
//! retrieval of the next answer from a source is delayed by a sample from a
//! gamma distribution (`numpy.random.gamma` + `time.sleep`). This crate
//! reproduces that design with two improvements needed for a reproducible
//! benchmark harness:
//!
//! * a [`clock::Clock`] that can run in **virtual** mode (delays are
//!   accounted in simulated time, runs are deterministic and fast) or
//!   **real** mode (delays actually sleep, as in the paper);
//! * a [`gamma`] sampler (Marsaglia–Tsang) built directly on `rand`, with
//!   the three gamma profiles of §3 predefined in [`profile`];
//! * an explicit [`cost::CostModel`] that converts the relational engine's
//!   work counters and the federated engine's operator counters into
//!   simulated time — making the "engine-level string filters are faster
//!   than RDB filters" observation an explicit, tunable assumption.

pub mod clock;
pub mod cost;
pub mod fault;
pub mod gamma;
pub mod link;
pub mod obs;
pub mod profile;
pub mod sched;

pub use clock::{Clock, SharedClock};
pub use cost::CostModel;
pub use fault::{FaultPlan, FaultPlans, LinkFault, OutageGroup};
pub use gamma::GammaSampler;
pub use link::Link;
pub use obs::NetObserver;
pub use profile::{DelayModel, NetworkProfile};
pub use sched::{EventQueue, EventTime};
