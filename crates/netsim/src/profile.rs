//! The four network settings of the paper's experiment (§3).

use crate::gamma::GammaSampler;
use fedlake_prng::Prng;
use std::fmt;
use std::time::Duration;

/// Per-message delay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Perfect network: no or negligible latency.
    None,
    /// Gamma-distributed latency; parameters in milliseconds.
    Gamma {
        /// Shape.
        alpha: f64,
        /// Scale, in milliseconds.
        beta_ms: f64,
    },
    /// Fixed latency (useful in tests and ablations).
    Constant {
        /// Latency in milliseconds.
        ms: f64,
    },
}

impl DelayModel {
    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        match self {
            DelayModel::None => 0.0,
            DelayModel::Gamma { alpha, beta_ms } => alpha * beta_ms,
            DelayModel::Constant { ms } => *ms,
        }
    }

    /// Draws one per-message delay.
    pub fn sample(&self, rng: &mut Prng) -> Duration {
        let ms = match self {
            DelayModel::None => 0.0,
            DelayModel::Gamma { alpha, beta_ms } => {
                GammaSampler::new(*alpha, *beta_ms).sample(rng)
            }
            DelayModel::Constant { ms } => *ms,
        };
        Duration::from_nanos((ms * 1_000_000.0) as u64)
    }
}

/// A named network setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Delay model applied per message retrieved from a source.
    pub delay: DelayModel,
}

impl NetworkProfile {
    /// §3 a) *No Delay*: perfect network.
    pub const NO_DELAY: NetworkProfile =
        NetworkProfile { name: "NoDelay", delay: DelayModel::None };

    /// §3 b) *Gamma 1*: fast network, Γ(α=1, β=0.3) → 0.3 ms average.
    pub const GAMMA1: NetworkProfile = NetworkProfile {
        name: "Gamma1",
        delay: DelayModel::Gamma { alpha: 1.0, beta_ms: 0.3 },
    };

    /// §3 c) *Gamma 2*: medium network, Γ(α=3, β=1) → 3 ms average.
    pub const GAMMA2: NetworkProfile = NetworkProfile {
        name: "Gamma2",
        delay: DelayModel::Gamma { alpha: 3.0, beta_ms: 1.0 },
    };

    /// §3 d) *Gamma 3*: slow network, Γ(α=3, β=1.5) → 4.5 ms average.
    pub const GAMMA3: NetworkProfile = NetworkProfile {
        name: "Gamma3",
        delay: DelayModel::Gamma { alpha: 3.0, beta_ms: 1.5 },
    };

    /// The experiment's four settings, in the paper's order.
    pub const ALL: [NetworkProfile; 4] = [
        NetworkProfile::NO_DELAY,
        NetworkProfile::GAMMA1,
        NetworkProfile::GAMMA2,
        NetworkProfile::GAMMA3,
    ];

    /// The paper's threshold for a "slow network" in Heuristic 2. Profiles
    /// with a mean per-message latency at or above this are considered
    /// slow, which makes H2 push instantiations down to the source.
    pub const SLOW_THRESHOLD_MS: f64 = 1.0;

    /// True when Heuristic 2 should treat this network as slow.
    pub fn is_slow(&self) -> bool {
        self.delay.mean_ms() >= Self::SLOW_THRESHOLD_MS
    }
}

impl fmt::Display for NetworkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (mean {:.1} ms)", self.name, self.delay.mean_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_means() {
        assert_eq!(NetworkProfile::NO_DELAY.delay.mean_ms(), 0.0);
        assert!((NetworkProfile::GAMMA1.delay.mean_ms() - 0.3).abs() < 1e-12);
        assert!((NetworkProfile::GAMMA2.delay.mean_ms() - 3.0).abs() < 1e-12);
        assert!((NetworkProfile::GAMMA3.delay.mean_ms() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn slow_classification() {
        assert!(!NetworkProfile::NO_DELAY.is_slow());
        assert!(!NetworkProfile::GAMMA1.is_slow());
        assert!(NetworkProfile::GAMMA2.is_slow());
        assert!(NetworkProfile::GAMMA3.is_slow());
    }

    #[test]
    fn no_delay_samples_zero() {
        let mut rng = Prng::seed_from_u64(1);
        assert_eq!(
            NetworkProfile::NO_DELAY.delay.sample(&mut rng),
            Duration::ZERO
        );
    }

    #[test]
    fn gamma_sampling_mean_close() {
        let mut rng = Prng::seed_from_u64(1);
        let n = 50_000;
        let total: Duration = (0..n)
            .map(|_| NetworkProfile::GAMMA3.delay.sample(&mut rng))
            .sum();
        let mean_ms = total.as_secs_f64() * 1000.0 / n as f64;
        assert!((mean_ms - 4.5).abs() < 0.1, "mean was {mean_ms}");
    }

    #[test]
    fn constant_model() {
        let mut rng = Prng::seed_from_u64(1);
        let d = DelayModel::Constant { ms: 2.0 };
        assert_eq!(d.sample(&mut rng), Duration::from_millis(2));
        assert_eq!(d.mean_ms(), 2.0);
    }

    #[test]
    fn display() {
        assert_eq!(
            NetworkProfile::GAMMA2.to_string(),
            "Gamma2 (mean 3.0 ms)"
        );
    }
}
