//! A deterministic discrete-event schedule.
//!
//! The overlapped executor does not use OS threads: concurrency is purely
//! *temporal*. Every in-flight piece of source work (a message transfer, a
//! backoff wait, a source-side query evaluation) is represented by an
//! [`EventTime`] — the absolute virtual time at which it completes, plus a
//! monotone sequence number allocated at scheduling time. The sequence
//! number is the deterministic tie-break: two events completing at the
//! same instant are ordered by who was scheduled first, so a run is fully
//! determined by the seed regardless of iteration order elsewhere.
//!
//! [`EventQueue`] is deliberately minimal: the executor only ever needs
//! "when is the *earliest* pending completion?" (to jump the clock when
//! every input is stalled) — the per-operator state machines hold their own
//! event handles and complete them when polled past their due time.

use crate::obs::NetObserver;
use std::sync::Arc;
use std::time::Duration;

/// The completion instant of one scheduled event.
///
/// Ordered lexicographically by `(time, seq)`; `seq` is allocated
/// monotonically by [`EventQueue::schedule`], making simultaneous events
/// totally ordered in scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventTime {
    /// Absolute virtual time at which the event completes.
    pub time: Duration,
    /// Scheduling sequence number (the deterministic tie-break).
    pub seq: u64,
}

/// The set of pending events, with a monotone sequence counter.
#[derive(Debug, Default)]
pub struct EventQueue {
    next_seq: u64,
    pending: Vec<EventTime>,
    /// Passive depth observer; reported after every schedule/complete.
    observer: Option<Arc<dyn NetObserver>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Attaches a passive observer that is told the pending-event count
    /// after every mutation. Observers cannot affect the schedule.
    pub fn set_observer(&mut self, observer: Arc<dyn NetObserver>) {
        self.observer = Some(observer);
    }

    fn note_depth(&self) {
        if let Some(o) = &self.observer {
            o.on_queue_depth(self.pending.len());
        }
    }

    /// Registers an event completing at absolute time `time` and returns
    /// its handle. Handles are unique: `seq` never repeats.
    pub fn schedule(&mut self, time: Duration) -> EventTime {
        let ev = EventTime { time, seq: self.next_seq };
        self.next_seq += 1;
        self.pending.push(ev);
        self.note_depth();
        ev
    }

    /// Removes a completed (or abandoned) event. Tolerant of handles that
    /// were already removed.
    pub fn complete(&mut self, ev: EventTime) {
        self.pending.retain(|p| *p != ev);
        self.note_depth();
    }

    /// The earliest pending event, if any.
    pub fn next_pending(&self) -> Option<EventTime> {
        self.pending.iter().min().copied()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_time_then_seq() {
        let mut q = EventQueue::new();
        let a = q.schedule(Duration::from_millis(5));
        let b = q.schedule(Duration::from_millis(5));
        let c = q.schedule(Duration::from_millis(3));
        assert!(c < a, "earlier time wins");
        assert!(a < b, "equal times break by scheduling order");
        assert_eq!(q.next_pending(), Some(c));
    }

    #[test]
    fn complete_removes_and_is_tolerant() {
        let mut q = EventQueue::new();
        let a = q.schedule(Duration::from_millis(1));
        let b = q.schedule(Duration::from_millis(2));
        assert_eq!(q.len(), 2);
        q.complete(a);
        assert_eq!(q.next_pending(), Some(b));
        q.complete(a); // double-complete: no-op
        q.complete(b);
        assert!(q.is_empty());
        assert_eq!(q.next_pending(), None);
    }

    #[test]
    fn seq_is_monotone_across_completions() {
        let mut q = EventQueue::new();
        let a = q.schedule(Duration::ZERO);
        q.complete(a);
        let b = q.schedule(Duration::ZERO);
        assert!(b.seq > a.seq, "handles are never reused");
    }
}
