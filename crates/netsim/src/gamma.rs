//! Gamma-distributed random sampling.
//!
//! The paper draws per-message latencies from `numpy.random.gamma(α, β)`
//! (shape/scale parameterization, mean `α·β`). This module implements the
//! Marsaglia–Tsang (2000) squeeze method on top of the in-repo splitmix64
//! generator, avoiding an external dependency while matching numpy's
//! parameterization.

use fedlake_prng::Prng;

/// A gamma(shape `alpha`, scale `beta`) sampler; mean is `alpha * beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaSampler {
    /// Shape parameter (> 0).
    pub alpha: f64,
    /// Scale parameter (> 0).
    pub beta: f64,
}

impl GammaSampler {
    /// Creates a sampler. Panics when a parameter is not positive.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0, "gamma shape must be positive");
        assert!(beta > 0.0, "gamma scale must be positive");
        GammaSampler { alpha, beta }
    }

    /// The distribution mean `α·β`.
    pub fn mean(&self) -> f64 {
        self.alpha * self.beta
    }

    /// The distribution variance `α·β²`.
    pub fn variance(&self) -> f64 {
        self.alpha * self.beta * self.beta
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Prng) -> f64 {
        if self.alpha < 1.0 {
            // Boost: gamma(α) = gamma(α+1) · U^{1/α}.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            return sample_mt(self.alpha + 1.0, rng) * u.powf(1.0 / self.alpha) * self.beta;
        }
        sample_mt(self.alpha, rng) * self.beta
    }
}

/// Marsaglia–Tsang for shape ≥ 1, scale 1.
fn sample_mt(alpha: f64, rng: &mut Prng) -> f64 {
    debug_assert!(alpha >= 1.0);
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal(rng: &mut Prng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(alpha: f64, beta: f64, n: usize) -> (f64, f64) {
        let g = GammaSampler::new(alpha, beta);
        let mut rng = Prng::seed_from_u64(42);
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn paper_gamma1_mean() {
        // α=1, β=0.3 → mean 0.3 (ms).
        let (mean, _) = moments(1.0, 0.3, 200_000);
        assert!((mean - 0.3).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn paper_gamma2_mean() {
        // α=3, β=1 → mean 3.
        let (mean, var) = moments(3.0, 1.0, 200_000);
        assert!((mean - 3.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 3.0).abs() < 0.2, "variance was {var}");
    }

    #[test]
    fn paper_gamma3_mean() {
        // α=3, β=1.5 → mean 4.5.
        let (mean, _) = moments(3.0, 1.5, 200_000);
        assert!((mean - 4.5).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn small_shape_boost() {
        let (mean, _) = moments(0.5, 2.0, 200_000);
        assert!((mean - 1.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn samples_are_positive() {
        let g = GammaSampler::new(1.0, 0.3);
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = GammaSampler::new(3.0, 1.5);
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut a), g.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_panics() {
        GammaSampler::new(0.0, 1.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::seed_from_u64(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01);
        assert!((var - 1.0).abs() < 0.02);
    }
}
