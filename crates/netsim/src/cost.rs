//! The cost model: converting work counters into simulated time.
//!
//! The paper's observation behind Heuristic 2 — *"from our experience
//! filtering string data at the query engine performs faster compared to
//! executing the filters in the relational database"* — is encoded here as
//! an explicit pair of per-evaluation costs
//! ([`CostModel::rdb_filter_eval_us`] vs.
//! [`CostModel::engine_filter_eval_us`]). Making the assumption a tunable
//! number lets the benchmark harness show both the regime where it holds
//! (the paper's Q1) and the one where it does not (the paper's Q3, where an
//! index beats both).

use std::time::Duration;

/// Cost-model constants, all in microseconds per unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// RDB heap row visited by a sequential scan.
    pub rdb_row_scan_us: f64,
    /// RDB index probe (B-tree descent).
    pub rdb_index_probe_us: f64,
    /// RDB row fetched through an index.
    pub rdb_index_row_us: f64,
    /// RDB predicate evaluation (the paper's slow string filtering).
    pub rdb_filter_eval_us: f64,
    /// RDB hash-join build, per row.
    pub rdb_hash_build_us: f64,
    /// RDB hash-join probe, per row.
    pub rdb_hash_probe_us: f64,
    /// RDB sort, per row (n log n absorbed into the constant).
    pub rdb_sort_row_us: f64,
    /// Query-engine predicate evaluation (faster than the RDB, per §2.2).
    pub engine_filter_eval_us: f64,
    /// Query-engine join work per probe (symmetric hash join insert+probe).
    pub engine_join_probe_us: f64,
    /// Query-engine per-row overhead for producing/merging tuples.
    pub engine_row_us: f64,
    /// Per-message fixed cost at a wrapper (serialization etc.), in
    /// addition to the sampled network delay.
    pub message_overhead_us: f64,
    /// Per-row transfer cost within a message.
    pub row_transfer_us: f64,
    /// SPARQL endpoint: per triple-pattern evaluation overhead.
    pub sparql_pattern_us: f64,
    /// SPARQL endpoint: per result row produced.
    pub sparql_row_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rdb_row_scan_us: 0.5,
            rdb_index_probe_us: 2.0,
            rdb_index_row_us: 0.3,
            rdb_filter_eval_us: 2.5,
            rdb_hash_build_us: 0.4,
            rdb_hash_probe_us: 0.3,
            rdb_sort_row_us: 0.8,
            engine_filter_eval_us: 0.8,
            engine_join_probe_us: 0.4,
            engine_row_us: 0.2,
            message_overhead_us: 4.0,
            row_transfer_us: 0.6,
            sparql_pattern_us: 5.0,
            sparql_row_us: 0.5,
        }
    }
}

impl CostModel {
    /// A model in which RDB-side filtering is *cheaper* than engine-side
    /// filtering — the regime where the stated form of Heuristic 2 is
    /// wrong, used by the ablation benches.
    pub fn rdb_filter_favouring() -> Self {
        CostModel {
            rdb_filter_eval_us: 0.4,
            engine_filter_eval_us: 1.2,
            ..CostModel::default()
        }
    }

    /// Converts microseconds to a `Duration`.
    pub fn us(v: f64) -> Duration {
        Duration::from_nanos((v * 1_000.0).max(0.0) as u64)
    }

    /// Simulated time for the relational engine's work counters.
    pub fn rdb_time(&self, c: &fedlake_relational_cost::CostStats) -> Duration {
        let us = c.rows_scanned as f64 * self.rdb_row_scan_us
            + c.index_probes as f64 * self.rdb_index_probe_us
            + c.index_rows as f64 * self.rdb_index_row_us
            + c.filter_evals as f64 * self.rdb_filter_eval_us
            + c.hash_build_rows as f64 * self.rdb_hash_build_us
            + c.hash_probe_rows as f64 * self.rdb_hash_probe_us
            + c.sort_rows as f64 * self.rdb_sort_row_us;
        Self::us(us)
    }

    /// Simulated time for `n` engine-side filter evaluations.
    pub fn engine_filter_time(&self, evals: u64) -> Duration {
        Self::us(evals as f64 * self.engine_filter_eval_us)
    }

    /// Simulated time for `n` engine-side join probes.
    pub fn engine_join_time(&self, probes: u64) -> Duration {
        Self::us(probes as f64 * self.engine_join_probe_us)
    }

    /// Simulated per-row engine overhead.
    pub fn engine_row_time(&self, rows: u64) -> Duration {
        Self::us(rows as f64 * self.engine_row_us)
    }

    /// Fixed (non-latency) cost of transmitting one message of `rows` rows.
    pub fn message_time(&self, rows: usize) -> Duration {
        Self::us(self.message_overhead_us + rows as f64 * self.row_transfer_us)
    }

    /// Simulated time a SPARQL endpoint spends answering a star of
    /// `patterns` triple patterns producing `rows` results.
    pub fn sparql_time(&self, patterns: usize, rows: u64) -> Duration {
        Self::us(patterns as f64 * self.sparql_pattern_us + rows as f64 * self.sparql_row_us)
    }
}

/// Minimal mirror of `fedlake_relational::exec::CostStats` so this crate
/// does not depend on the relational crate (the dependency points the other
/// way in the workspace: wrappers convert between the two).
pub mod fedlake_relational_cost {
    /// Work counters (see `fedlake_relational::exec::CostStats`).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct CostStats {
        /// Heap rows visited by sequential scans.
        pub rows_scanned: u64,
        /// Index probes.
        pub index_probes: u64,
        /// Rows fetched via indexes.
        pub index_rows: u64,
        /// Predicate evaluations.
        pub filter_evals: u64,
        /// Hash-build rows.
        pub hash_build_rows: u64,
        /// Hash-probe rows.
        pub hash_probe_rows: u64,
        /// Sorted rows.
        pub sort_rows: u64,
        /// Result rows.
        pub rows_output: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::fedlake_relational_cost::CostStats;
    use super::*;

    #[test]
    fn default_encodes_h2_assumption() {
        let m = CostModel::default();
        assert!(
            m.engine_filter_eval_us < m.rdb_filter_eval_us,
            "the paper's stated experience: engine filters are faster"
        );
    }

    #[test]
    fn inverted_model_for_ablation() {
        let m = CostModel::rdb_filter_favouring();
        assert!(m.engine_filter_eval_us > m.rdb_filter_eval_us);
    }

    #[test]
    fn rdb_time_weights_counters() {
        let m = CostModel::default();
        let scan = CostStats { rows_scanned: 1000, ..Default::default() };
        let idx = CostStats { index_probes: 1, index_rows: 10, ..Default::default() };
        // 1000 scanned rows must cost far more than one index probe.
        assert!(m.rdb_time(&scan) > 10 * m.rdb_time(&idx));
    }

    #[test]
    fn us_conversion() {
        assert_eq!(CostModel::us(1.0), Duration::from_micros(1));
        assert_eq!(CostModel::us(0.5), Duration::from_nanos(500));
        assert_eq!(CostModel::us(-1.0), Duration::ZERO);
    }

    #[test]
    fn message_time_scales_with_rows() {
        let m = CostModel::default();
        assert!(m.message_time(100) > m.message_time(1));
    }
}
