//! Observation hooks for the simulated network.
//!
//! The tracing subsystem lives in `fedlake-core` (which depends on this
//! crate), so netsim cannot name the trace sink directly. Instead it
//! exposes a minimal observer trait: a [`Link`](crate::Link) or
//! [`EventQueue`](crate::EventQueue) carrying an observer reports every
//! transfer attempt (serialized *and* scheduled) and every queue-depth
//! change to it. Observers are strictly passive — they are handed times
//! that the link already computed, they never draw from the link's RNG,
//! never advance any clock, and never influence an outcome — so attaching
//! one cannot perturb a run. When no observer is attached the hooks cost
//! one `Option` check.

use crate::fault::LinkFault;
use std::time::Duration;

/// A passive observer of simulated network activity.
///
/// `start`/`end` are absolute virtual times on the timeline the reporting
/// component uses: the shared clock for serialized transfers, the link's
/// private timeline for scheduled ones. A faulted attempt reports the
/// fault it suffered; `end == start` when the fault consumed no link time
/// (drops, outages).
pub trait NetObserver: std::fmt::Debug + Send + Sync {
    /// One message transfer attempt on the link labelled `link` carrying
    /// `rows` rows, occupying `[start, end]`, with its outcome.
    fn on_transfer(
        &self,
        link: &str,
        rows: usize,
        start: Duration,
        end: Duration,
        fault: Option<LinkFault>,
    );

    /// The event queue's pending-event count changed to `depth`.
    fn on_queue_depth(&self, depth: usize) {
        let _ = depth;
    }

    /// A stream exhausted its retry budget on the replica endpoint `from`
    /// of logical source `logical` and failed over to endpoint `to`.
    /// Like every hook this is purely informational: the failover already
    /// happened when it is reported.
    fn on_failover(&self, logical: &str, from: &str, to: &str) {
        let _ = (logical, from, to);
    }
}
