//! A simulated network link between the query engine and one source.
//!
//! Mirrors the paper's setup: *"Network delays are simulated within the SQL
//! wrapper of Ontario; delaying the retrieval of the next answer from the
//! source."* Every message retrieved through a [`Link`] advances the shared
//! clock by a sampled delay plus the fixed transfer cost.

use crate::clock::SharedClock;
use crate::cost::CostModel;
use crate::fault::{FaultPlan, LinkFault};
use crate::obs::NetObserver;
use crate::profile::NetworkProfile;
use fedlake_prng::Prng;
use parking_lot_shim::Mutex;
use std::sync::Arc;
use std::time::Duration;

// `parking_lot` is only linked by crates that already depend on it; keep
// netsim dependency-light with a std shim exposing the same call shape.
mod parking_lot_shim {
    /// `std::sync::Mutex` with `parking_lot`-style (non-poisoning) `lock()`.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }

        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

/// Accumulated link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages transferred successfully.
    pub messages: u64,
    /// Rows transferred.
    pub rows: u64,
    /// Total simulated network delay injected.
    pub delay: Duration,
    /// Transfer attempts, successful or not (only counted while a fault
    /// plan is active; equals `messages` + the fault counters then).
    pub attempts: u64,
    /// Attempts lost in transit.
    pub dropped: u64,
    /// Attempts that arrived truncated.
    pub truncated: u64,
    /// Attempts swallowed by a source outage.
    pub outage_faults: u64,
    /// Successful transfers that suffered a latency spike.
    pub spikes: u64,
}

impl LinkStats {
    /// Failed attempts of any kind.
    pub fn faults(&self) -> u64 {
        self.dropped + self.truncated + self.outage_faults
    }
}

/// A link from the engine to one source, with its own RNG stream so runs
/// are reproducible regardless of how many sources a federation has.
#[derive(Debug)]
pub struct Link {
    /// The network setting this link simulates.
    pub profile: NetworkProfile,
    /// The fault schedule this link injects.
    pub faults: FaultPlan,
    clock: SharedClock,
    cost: CostModel,
    state: Mutex<LinkState>,
    /// Label reported to the observer (usually the source id).
    label: String,
    /// Passive transfer observer; never influences outcomes or RNG.
    observer: Option<Arc<dyn NetObserver>>,
}

#[derive(Debug)]
struct LinkState {
    rng: Prng,
    stats: LinkStats,
    /// The link's private timeline for the overlapped schedule: the
    /// absolute virtual time up to which this link is busy. Transfers
    /// scheduled on a link queue behind each other here instead of
    /// advancing the shared clock.
    local: Duration,
}

impl Link {
    /// Creates a fault-free link over `clock` with a deterministic RNG
    /// stream.
    pub fn new(profile: NetworkProfile, clock: SharedClock, cost: CostModel, seed: u64) -> Self {
        Self::with_faults(profile, clock, cost, seed, FaultPlan::NONE)
    }

    /// Creates a link that additionally injects `faults`.
    pub fn with_faults(
        profile: NetworkProfile,
        clock: SharedClock,
        cost: CostModel,
        seed: u64,
        faults: FaultPlan,
    ) -> Self {
        Link {
            profile,
            faults,
            clock,
            cost,
            state: Mutex::new(LinkState {
                rng: Prng::seed_from_u64(seed),
                stats: LinkStats::default(),
                local: Duration::ZERO,
            }),
            label: String::new(),
            observer: None,
        }
    }

    /// Attaches a passive transfer observer under `label`. The observer
    /// is told about every attempt (serialized or scheduled) but cannot
    /// perturb the link: outcomes, RNG draws, stats, and times are
    /// identical with or without one.
    pub fn with_observer(
        mut self,
        label: impl Into<String>,
        observer: Arc<dyn NetObserver>,
    ) -> Self {
        self.label = label.into();
        self.observer = Some(observer);
        self
    }

    /// Attempts the transfer of one message carrying `rows` rows.
    ///
    /// On success the clock advances by the sampled latency (possibly
    /// spiked) plus the fixed per-message cost and the traffic is
    /// recorded. On failure the attempt is recorded and the fault is
    /// returned; a truncated attempt still pays its transit delay, a drop
    /// or outage costs no link time (the *receiver's* detection timeout is
    /// the retry policy's concern, not the link's).
    pub fn try_transfer_message(&self, rows: usize) -> Result<(), LinkFault> {
        let Some(observer) = &self.observer else {
            return self.transfer_inner(rows);
        };
        let start = self.clock.now();
        let result = self.transfer_inner(rows);
        observer.on_transfer(&self.label, rows, start, self.clock.now(), result.err());
        result
    }

    /// Serialized transfer body (shared by the observed and unobserved
    /// paths); see [`Link::try_transfer_message`] for semantics.
    fn transfer_inner(&self, rows: usize) -> Result<(), LinkFault> {
        let mut st = self.state.lock();
        let mut spike = false;
        if self.faults.is_active() {
            let attempt = st.stats.attempts;
            st.stats.attempts += 1;
            if self.faults.in_outage(attempt) {
                st.stats.outage_faults += 1;
                return Err(LinkFault::SourceDown);
            }
            let u = st.rng.next_f64();
            if u < self.faults.drop_prob {
                st.stats.dropped += 1;
                return Err(LinkFault::Dropped);
            }
            if u < self.faults.drop_prob + self.faults.truncate_prob {
                st.stats.truncated += 1;
                let delay = self.profile.delay.sample(&mut st.rng);
                st.stats.delay += delay;
                drop(st);
                self.clock.advance(delay + self.cost.message_time(rows));
                return Err(LinkFault::Truncated);
            }
            spike = u
                < self.faults.drop_prob + self.faults.truncate_prob + self.faults.spike_prob;
        }
        let mut delay = self.profile.delay.sample(&mut st.rng);
        if spike {
            st.stats.spikes += 1;
            delay = Duration::from_nanos(
                (delay.as_nanos() as f64 * self.faults.spike_factor.max(0.0)) as u64,
            );
        }
        st.stats.messages += 1;
        st.stats.rows += rows as u64;
        st.stats.delay += delay;
        drop(st);
        self.clock.advance(delay + self.cost.message_time(rows));
        Ok(())
    }

    /// Schedules the transfer of one message carrying `rows` rows on this
    /// link's *private* timeline, starting no earlier than `start`, and
    /// returns the absolute completion time plus the transfer outcome.
    ///
    /// This is the overlapped-schedule counterpart of
    /// [`Link::try_transfer_message`]: it draws the *same* RNG values in
    /// the same order and updates [`LinkStats`] identically (same fault
    /// decisions, same counters, same delay attribution — delay is charged
    /// once per attempt, exactly as in the serialized path), but instead of
    /// advancing the shared clock it extends the link's local timeline.
    /// Transfers on one link serialize behind each other (a link is one
    /// connection); transfers on *different* links overlap in virtual time.
    ///
    /// A drop or outage completes at its begin time and occupies no link
    /// time (detection is the receiver's timeout, charged by the retry
    /// policy); a truncated message pays its transit like the serialized
    /// path does.
    pub fn schedule_message(&self, rows: usize, start: Duration) -> (Duration, Result<(), LinkFault>) {
        let (begin, done, result) = self.schedule_inner(rows, start);
        if let Some(observer) = &self.observer {
            observer.on_transfer(&self.label, rows, begin, done, result.err());
        }
        (done, result)
    }

    /// Scheduled transfer body; returns `(begin, done, outcome)` so the
    /// observed path can report the attempt's occupancy window.
    fn schedule_inner(
        &self,
        rows: usize,
        start: Duration,
    ) -> (Duration, Duration, Result<(), LinkFault>) {
        let mut st = self.state.lock();
        let begin = st.local.max(start);
        let mut spike = false;
        if self.faults.is_active() {
            let attempt = st.stats.attempts;
            st.stats.attempts += 1;
            if self.faults.in_outage(attempt) {
                st.stats.outage_faults += 1;
                st.local = begin;
                return (begin, begin, Err(LinkFault::SourceDown));
            }
            let u = st.rng.next_f64();
            if u < self.faults.drop_prob {
                st.stats.dropped += 1;
                st.local = begin;
                return (begin, begin, Err(LinkFault::Dropped));
            }
            if u < self.faults.drop_prob + self.faults.truncate_prob {
                st.stats.truncated += 1;
                let delay = self.profile.delay.sample(&mut st.rng);
                st.stats.delay += delay;
                let done = begin + delay + self.cost.message_time(rows);
                st.local = done;
                return (begin, done, Err(LinkFault::Truncated));
            }
            spike = u
                < self.faults.drop_prob + self.faults.truncate_prob + self.faults.spike_prob;
        }
        let mut delay = self.profile.delay.sample(&mut st.rng);
        if spike {
            st.stats.spikes += 1;
            delay = Duration::from_nanos(
                (delay.as_nanos() as f64 * self.faults.spike_factor.max(0.0)) as u64,
            );
        }
        st.stats.messages += 1;
        st.stats.rows += rows as u64;
        st.stats.delay += delay;
        let done = begin + delay + self.cost.message_time(rows);
        st.local = done;
        (begin, done, Ok(()))
    }

    /// Schedules `work` of source-side compute (an RDB scan, a SPARQL
    /// evaluation, a backoff wait) on this link's private timeline,
    /// starting no earlier than `start`; returns the completion time. No
    /// traffic is recorded — this is occupancy, not transfer.
    pub fn schedule_busy(&self, work: Duration, start: Duration) -> Duration {
        let mut st = self.state.lock();
        let done = st.local.max(start) + work;
        st.local = done;
        done
    }

    /// The absolute time up to which this link's private timeline is
    /// occupied (zero until the first `schedule_*` call).
    pub fn local_time(&self) -> Duration {
        self.state.lock().local
    }

    /// Simulates the transfer of one message carrying `rows` rows:
    /// advances the clock by a sampled latency plus the fixed per-message
    /// cost, and records the traffic. Panics on an injected fault — use
    /// [`Link::try_transfer_message`] on links with an active fault plan.
    pub fn transfer_message(&self, rows: usize) {
        if let Err(f) = self.try_transfer_message(rows) {
            panic!("unhandled link fault ({f}); use try_transfer_message");
        }
    }

    /// Simulates transferring `total_rows` rows in messages of
    /// `rows_per_message` (the last message may be smaller). An empty
    /// result still costs one (empty) message — the source must answer.
    pub fn transfer_rows(&self, total_rows: usize, rows_per_message: usize) {
        assert!(rows_per_message > 0, "message size must be positive");
        if total_rows == 0 {
            self.transfer_message(0);
            return;
        }
        let mut remaining = total_rows;
        while remaining > 0 {
            let n = remaining.min(rows_per_message);
            self.transfer_message(n);
            remaining -= n;
        }
    }

    /// The label this link reports to its observer (usually the source or
    /// replica-endpoint id; empty when no observer was attached).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The observer attached to this link, if any. Failover lives above
    /// the link layer (a link is one connection to one endpoint), so the
    /// component that switches links needs the observer to report
    /// [`NetObserver::on_failover`] itself.
    pub fn observer(&self) -> Option<&std::sync::Arc<dyn NetObserver>> {
        self.observer.as_ref()
    }

    /// Traffic accumulated so far.
    pub fn stats(&self) -> LinkStats {
        self.state.lock().stats
    }

    /// The shared clock this link advances.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::shared_virtual;

    fn link(profile: NetworkProfile) -> Link {
        Link::new(profile, shared_virtual(), CostModel::default(), 99)
    }

    #[test]
    fn transfer_advances_clock() {
        let l = link(NetworkProfile::GAMMA3);
        let before = l.clock().now();
        l.transfer_message(10);
        assert!(l.clock().now() > before);
        let s = l.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.rows, 10);
        assert!(s.delay > Duration::ZERO);
    }

    #[test]
    fn no_delay_still_costs_transfer_time() {
        let l = link(NetworkProfile::NO_DELAY);
        l.transfer_message(10);
        // No network delay, but serialization/transfer cost applies.
        assert_eq!(l.stats().delay, Duration::ZERO);
        assert!(l.clock().now() > Duration::ZERO);
    }

    #[test]
    fn batching_reduces_messages() {
        let a = link(NetworkProfile::GAMMA2);
        a.transfer_rows(100, 1);
        let b = link(NetworkProfile::GAMMA2);
        b.transfer_rows(100, 50);
        assert_eq!(a.stats().messages, 100);
        assert_eq!(b.stats().messages, 2);
        // Per-row messages accumulate far more delay.
        assert!(a.clock().now() > b.clock().now());
    }

    #[test]
    fn empty_result_costs_one_message() {
        let l = link(NetworkProfile::GAMMA1);
        l.transfer_rows(0, 64);
        assert_eq!(l.stats().messages, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = link(NetworkProfile::GAMMA3);
        let b = link(NetworkProfile::GAMMA3);
        a.transfer_rows(50, 1);
        b.transfer_rows(50, 1);
        assert_eq!(a.clock().now(), b.clock().now());
    }

    #[test]
    fn slow_profile_dominates() {
        let fast = link(NetworkProfile::GAMMA1);
        let slow = link(NetworkProfile::GAMMA3);
        fast.transfer_rows(500, 1);
        slow.transfer_rows(500, 1);
        assert!(slow.clock().now() > fast.clock().now());
    }

    fn faulty(profile: NetworkProfile, plan: FaultPlan) -> Link {
        Link::with_faults(profile, shared_virtual(), CostModel::default(), 99, plan)
    }

    #[test]
    fn outage_fails_exact_window() {
        let plan = FaultPlan { outage_after: Some(2), outage_len: 3, ..FaultPlan::NONE };
        let l = faulty(NetworkProfile::GAMMA1, plan);
        let mut results = Vec::new();
        for _ in 0..7 {
            results.push(l.try_transfer_message(1).is_ok());
        }
        assert_eq!(results, [true, true, false, false, false, true, true]);
        let s = l.stats();
        assert_eq!(s.attempts, 7);
        assert_eq!(s.messages, 4);
        assert_eq!(s.outage_faults, 3);
        assert_eq!(s.faults(), 3);
    }

    #[test]
    fn drops_are_deterministic_and_cost_no_link_time() {
        let plan = FaultPlan { drop_prob: 0.5, ..FaultPlan::NONE };
        let a = faulty(NetworkProfile::NO_DELAY, plan);
        let b = faulty(NetworkProfile::NO_DELAY, plan);
        let ra: Vec<bool> = (0..64).map(|_| a.try_transfer_message(1).is_ok()).collect();
        let rb: Vec<bool> = (0..64).map(|_| b.try_transfer_message(1).is_ok()).collect();
        assert_eq!(ra, rb, "identical seeds must observe identical faults");
        let s = a.stats();
        assert!(s.dropped > 0, "p=0.5 over 64 attempts must drop something");
        assert_eq!(s.messages + s.dropped, 64);
        // NoDelay + only drops: clock time comes from delivered messages only.
        assert_eq!(a.clock().now(), CostModel::default().message_time(1) * s.messages as u32);
    }

    #[test]
    fn truncation_pays_transit_delay() {
        let plan = FaultPlan { truncate_prob: 1.0, ..FaultPlan::NONE };
        let l = faulty(NetworkProfile::GAMMA3, plan);
        assert_eq!(l.try_transfer_message(5), Err(LinkFault::Truncated));
        let s = l.stats();
        assert_eq!(s.truncated, 1);
        assert_eq!(s.messages, 0);
        assert!(s.delay > Duration::ZERO, "a truncated message still paid its delay");
        assert!(l.clock().now() > Duration::ZERO);
    }

    #[test]
    fn spikes_inflate_delay_deterministically() {
        let plan = FaultPlan { spike_prob: 1.0, spike_factor: 10.0, ..FaultPlan::NONE };
        let spiked = faulty(NetworkProfile::GAMMA2, plan);
        let plain = link(NetworkProfile::GAMMA2);
        for _ in 0..32 {
            spiked.transfer_message(1);
            plain.transfer_message(1);
        }
        assert_eq!(spiked.stats().spikes, 32);
        // The spiked link consumes one extra fault draw per message, so the
        // streams differ; still, a 10x factor must dominate the variance.
        assert!(spiked.stats().delay > plain.stats().delay * 3);
        // And identical seeds with identical plans stay identical.
        let again = faulty(NetworkProfile::GAMMA2, plan);
        for _ in 0..32 {
            again.transfer_message(1);
        }
        assert_eq!(again.stats(), spiked.stats());
    }

    #[test]
    fn inactive_plan_preserves_rng_stream() {
        // A link with FaultPlan::NONE must behave bit-identically to a
        // pre-fault link: no extra RNG draws, identical clock.
        let a = link(NetworkProfile::GAMMA3);
        let b = faulty(NetworkProfile::GAMMA3, FaultPlan::NONE);
        a.transfer_rows(100, 7);
        b.transfer_rows(100, 7);
        assert_eq!(a.clock().now(), b.clock().now());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(b.stats().attempts, 0, "inactive plans do not count attempts");
    }

    #[test]
    #[should_panic(expected = "unhandled link fault")]
    fn infallible_transfer_panics_on_fault() {
        let plan = FaultPlan { outage_after: Some(0), outage_len: 1, ..FaultPlan::NONE };
        faulty(NetworkProfile::NO_DELAY, plan).transfer_message(1);
    }

    #[test]
    fn scheduled_transfers_queue_on_the_local_timeline() {
        let l = link(NetworkProfile::GAMMA2);
        let (t1, r1) = l.schedule_message(5, Duration::ZERO);
        assert_eq!(r1, Ok(()));
        assert!(t1 > Duration::ZERO);
        // A second transfer requested "at time zero" still queues behind
        // the first: one link is one connection.
        let (t2, r2) = l.schedule_message(5, Duration::ZERO);
        assert_eq!(r2, Ok(()));
        assert!(t2 > t1);
        assert_eq!(l.local_time(), t2);
        // The shared clock is untouched by scheduling.
        assert_eq!(l.clock().now(), Duration::ZERO);
    }

    #[test]
    fn scheduled_matches_serialized_draws_and_stats() {
        let a = link(NetworkProfile::GAMMA3);
        let b = link(NetworkProfile::GAMMA3);
        let mut start = Duration::ZERO;
        for i in 0..32 {
            a.transfer_message(i % 4);
            let (done, r) = b.schedule_message(i % 4, start);
            assert_eq!(r, Ok(()));
            start = done;
        }
        assert_eq!(a.stats(), b.stats());
        // Back-to-back scheduling reproduces the serialized clock exactly.
        assert_eq!(a.clock().now(), b.local_time());
    }

    #[test]
    fn scheduled_drop_occupies_no_link_time() {
        let plan = FaultPlan { drop_prob: 1.0, ..FaultPlan::NONE };
        let l = faulty(NetworkProfile::GAMMA3, plan);
        let start = Duration::from_millis(7);
        let (done, r) = l.schedule_message(3, start);
        assert_eq!(r, Err(LinkFault::Dropped));
        assert_eq!(done, start, "a drop completes at its begin time");
        assert_eq!(l.local_time(), start);
    }

    type TransferEvent = (String, usize, Duration, Duration, Option<LinkFault>);

    #[derive(Debug, Default)]
    struct Recorder {
        events: Mutex<Vec<TransferEvent>>,
    }

    impl NetObserver for Recorder {
        fn on_transfer(
            &self,
            link: &str,
            rows: usize,
            start: Duration,
            end: Duration,
            fault: Option<LinkFault>,
        ) {
            self.events.lock().push((link.to_string(), rows, start, end, fault));
        }
    }

    #[test]
    fn observer_is_passive_on_serialized_transfers() {
        let plan = FaultPlan { drop_prob: 0.3, truncate_prob: 0.2, ..FaultPlan::NONE };
        let plain = faulty(NetworkProfile::GAMMA2, plan);
        let rec = Arc::new(Recorder::default());
        let observed = faulty(NetworkProfile::GAMMA2, plan)
            .with_observer("src", Arc::clone(&rec) as Arc<dyn NetObserver>);
        for i in 0..48 {
            let a = plain.try_transfer_message(i % 5);
            let b = observed.try_transfer_message(i % 5);
            assert_eq!(a, b, "observer must not change outcomes");
        }
        assert_eq!(plain.stats(), observed.stats());
        assert_eq!(plain.clock().now(), observed.clock().now());
        let events = rec.events.lock();
        assert_eq!(events.len(), 48, "every attempt is reported");
        let rows: u64 =
            events.iter().filter(|e| e.4.is_none()).map(|e| e.1 as u64).sum();
        assert_eq!(rows, observed.stats().rows, "successful rows reconcile");
        for (label, _, start, end, _) in events.iter() {
            assert_eq!(label, "src");
            assert!(end >= start);
        }
    }

    #[test]
    fn observer_sees_scheduled_occupancy_windows() {
        let rec = Arc::new(Recorder::default());
        let l = link(NetworkProfile::GAMMA2)
            .with_observer("src", Arc::clone(&rec) as Arc<dyn NetObserver>);
        let (t1, _) = l.schedule_message(3, Duration::from_millis(2));
        let (t2, _) = l.schedule_message(4, Duration::ZERO);
        let events = rec.events.lock();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].2, Duration::from_millis(2), "begin honours start");
        assert_eq!(events[0].3, t1);
        assert_eq!(events[1].2, t1, "second transfer queues behind the first");
        assert_eq!(events[1].3, t2);
    }

    #[test]
    fn scheduled_busy_extends_timeline_without_traffic() {
        let l = link(NetworkProfile::GAMMA1);
        let done = l.schedule_busy(Duration::from_millis(4), Duration::from_millis(10));
        assert_eq!(done, Duration::from_millis(14));
        assert_eq!(l.local_time(), done);
        assert_eq!(l.stats().messages, 0);
    }
}
