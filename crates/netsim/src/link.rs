//! A simulated network link between the query engine and one source.
//!
//! Mirrors the paper's setup: *"Network delays are simulated within the SQL
//! wrapper of Ontario; delaying the retrieval of the next answer from the
//! source."* Every message retrieved through a [`Link`] advances the shared
//! clock by a sampled delay plus the fixed transfer cost.

use crate::clock::SharedClock;
use crate::cost::CostModel;
use crate::profile::NetworkProfile;
use fedlake_prng::Prng;
use parking_lot_shim::Mutex;
use std::time::Duration;

// `parking_lot` is only linked by crates that already depend on it; keep
// netsim dependency-light with a std shim exposing the same call shape.
mod parking_lot_shim {
    /// `std::sync::Mutex` with `parking_lot`-style (non-poisoning) `lock()`.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }

        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

/// Accumulated link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages transferred.
    pub messages: u64,
    /// Rows transferred.
    pub rows: u64,
    /// Total simulated network delay injected.
    pub delay: Duration,
}

/// A link from the engine to one source, with its own RNG stream so runs
/// are reproducible regardless of how many sources a federation has.
#[derive(Debug)]
pub struct Link {
    /// The network setting this link simulates.
    pub profile: NetworkProfile,
    clock: SharedClock,
    cost: CostModel,
    state: Mutex<LinkState>,
}

#[derive(Debug)]
struct LinkState {
    rng: Prng,
    stats: LinkStats,
}

impl Link {
    /// Creates a link over `clock` with a deterministic RNG stream.
    pub fn new(profile: NetworkProfile, clock: SharedClock, cost: CostModel, seed: u64) -> Self {
        Link {
            profile,
            clock,
            cost,
            state: Mutex::new(LinkState { rng: Prng::seed_from_u64(seed), stats: LinkStats::default() }),
        }
    }

    /// Simulates the transfer of one message carrying `rows` rows:
    /// advances the clock by a sampled latency plus the fixed per-message
    /// cost, and records the traffic.
    pub fn transfer_message(&self, rows: usize) {
        let mut st = self.state.lock();
        let delay = self.profile.delay.sample(&mut st.rng);
        st.stats.messages += 1;
        st.stats.rows += rows as u64;
        st.stats.delay += delay;
        drop(st);
        self.clock.advance(delay + self.cost.message_time(rows));
    }

    /// Simulates transferring `total_rows` rows in messages of
    /// `rows_per_message` (the last message may be smaller). An empty
    /// result still costs one (empty) message — the source must answer.
    pub fn transfer_rows(&self, total_rows: usize, rows_per_message: usize) {
        assert!(rows_per_message > 0, "message size must be positive");
        if total_rows == 0 {
            self.transfer_message(0);
            return;
        }
        let mut remaining = total_rows;
        while remaining > 0 {
            let n = remaining.min(rows_per_message);
            self.transfer_message(n);
            remaining -= n;
        }
    }

    /// Traffic accumulated so far.
    pub fn stats(&self) -> LinkStats {
        self.state.lock().stats
    }

    /// The shared clock this link advances.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::shared_virtual;

    fn link(profile: NetworkProfile) -> Link {
        Link::new(profile, shared_virtual(), CostModel::default(), 99)
    }

    #[test]
    fn transfer_advances_clock() {
        let l = link(NetworkProfile::GAMMA3);
        let before = l.clock().now();
        l.transfer_message(10);
        assert!(l.clock().now() > before);
        let s = l.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.rows, 10);
        assert!(s.delay > Duration::ZERO);
    }

    #[test]
    fn no_delay_still_costs_transfer_time() {
        let l = link(NetworkProfile::NO_DELAY);
        l.transfer_message(10);
        // No network delay, but serialization/transfer cost applies.
        assert_eq!(l.stats().delay, Duration::ZERO);
        assert!(l.clock().now() > Duration::ZERO);
    }

    #[test]
    fn batching_reduces_messages() {
        let a = link(NetworkProfile::GAMMA2);
        a.transfer_rows(100, 1);
        let b = link(NetworkProfile::GAMMA2);
        b.transfer_rows(100, 50);
        assert_eq!(a.stats().messages, 100);
        assert_eq!(b.stats().messages, 2);
        // Per-row messages accumulate far more delay.
        assert!(a.clock().now() > b.clock().now());
    }

    #[test]
    fn empty_result_costs_one_message() {
        let l = link(NetworkProfile::GAMMA1);
        l.transfer_rows(0, 64);
        assert_eq!(l.stats().messages, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = link(NetworkProfile::GAMMA3);
        let b = link(NetworkProfile::GAMMA3);
        a.transfer_rows(50, 1);
        b.transfer_rows(50, 1);
        assert_eq!(a.clock().now(), b.clock().now());
    }

    #[test]
    fn slow_profile_dominates() {
        let fast = link(NetworkProfile::GAMMA1);
        let slow = link(NetworkProfile::GAMMA3);
        fast.transfer_rows(500, 1);
        slow.transfer_rows(500, 1);
        assert!(slow.clock().now() > fast.clock().now());
    }
}
