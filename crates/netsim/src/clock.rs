//! Virtual and real clocks.
//!
//! All delays and costs in the simulation flow through a [`Clock`]. In
//! `Virtual` mode, advancing the clock just adds to a counter — runs are
//! deterministic and orders of magnitude faster than wall-clock, while
//! preserving every ordering effect the paper measures. In `Real` mode the
//! clock actually sleeps, reproducing the paper's `time.sleep` setup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A simulation clock.
#[derive(Debug)]
pub enum Clock {
    /// Simulated time: `advance` accumulates, nothing sleeps.
    Virtual(AtomicU64),
    /// Wall-clock time: `advance` sleeps.
    Real(Instant),
}

impl Clock {
    /// A virtual clock starting at zero.
    pub fn virtual_clock() -> Self {
        Clock::Virtual(AtomicU64::new(0))
    }

    /// A real clock starting now.
    pub fn real_clock() -> Self {
        Clock::Real(Instant::now())
    }

    /// Elapsed simulated (or real) time since the clock started.
    pub fn now(&self) -> Duration {
        match self {
            Clock::Virtual(ns) => Duration::from_nanos(ns.load(Ordering::Relaxed)),
            Clock::Real(start) => start.elapsed(),
        }
    }

    /// Advances the clock by `d` (virtual: account; real: sleep).
    pub fn advance(&self, d: Duration) {
        match self {
            Clock::Virtual(ns) => {
                ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
            }
            Clock::Real(_) => std::thread::sleep(d),
        }
    }

    /// Advances the clock *to* absolute time `t` if `t` is in the future;
    /// a clock never runs backwards, so an already-passed `t` is a no-op.
    /// This is the discrete-event counterpart of [`Clock::advance`]: the
    /// scheduler jumps to the next event's completion time.
    pub fn advance_to(&self, t: Duration) {
        match self {
            Clock::Virtual(ns) => {
                ns.fetch_max(t.as_nanos() as u64, Ordering::Relaxed);
            }
            Clock::Real(start) => {
                let elapsed = start.elapsed();
                if t > elapsed {
                    std::thread::sleep(t - elapsed);
                }
            }
        }
    }

    /// True for virtual clocks.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }
}

/// A clock shared by the engine and every wrapper of a federation.
pub type SharedClock = Arc<Clock>;

/// Creates a shared virtual clock.
pub fn shared_virtual() -> SharedClock {
    Arc::new(Clock::virtual_clock())
}

/// Creates a shared real clock.
pub fn shared_real() -> SharedClock {
    Arc::new(Clock::real_clock())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_accumulates_without_sleeping() {
        let c = Clock::virtual_clock();
        let wall = Instant::now();
        c.advance(Duration::from_secs(3600));
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(3_600_250));
        // An hour of simulated time must pass in well under a second.
        assert!(wall.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn advance_to_never_runs_backwards() {
        let c = Clock::virtual_clock();
        c.advance_to(Duration::from_millis(40));
        assert_eq!(c.now(), Duration::from_millis(40));
        // Jumping to an earlier time is a no-op.
        c.advance_to(Duration::from_millis(10));
        assert_eq!(c.now(), Duration::from_millis(40));
        c.advance_to(Duration::from_millis(41));
        assert_eq!(c.now(), Duration::from_millis(41));
    }

    #[test]
    fn real_clock_advance_to_sleeps_remainder() {
        let c = Clock::real_clock();
        c.advance_to(Duration::from_millis(10));
        assert!(c.now() >= Duration::from_millis(10));
        // Already in the past: returns promptly.
        c.advance_to(Duration::from_millis(1));
    }

    #[test]
    fn real_clock_sleeps() {
        let c = Clock::real_clock();
        c.advance(Duration::from_millis(15));
        assert!(c.now() >= Duration::from_millis(15));
        assert!(!c.is_virtual());
    }

    #[test]
    fn shared_clock_is_shared() {
        let c = shared_virtual();
        let c2 = Arc::clone(&c);
        c.advance(Duration::from_millis(5));
        c2.advance(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(12));
        assert!(c.is_virtual());
    }
}
