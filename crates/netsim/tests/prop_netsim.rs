//! Randomized tests for the network simulation: sampler positivity and
//! scaling laws, link accounting invariants, and virtual-clock
//! arithmetic. Deterministically seeded via the in-repo PRNG.

use fedlake_netsim::clock::shared_virtual;
use fedlake_netsim::{CostModel, DelayModel, FaultPlan, GammaSampler, Link, NetworkProfile};
use fedlake_prng::Prng;
use std::sync::Arc;
use std::time::Duration;

fn random_fault_plan(rng: &mut Prng) -> FaultPlan {
    FaultPlan {
        drop_prob: rng.gen_range(0.0..0.4),
        truncate_prob: rng.gen_range(0.0..0.3),
        spike_prob: rng.gen_range(0.0..0.3),
        spike_factor: rng.gen_range(0.0..20.0),
        outage_after: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..40)),
        outage_len: rng.gen_range(0u64..10),
    }
}

/// Gamma samples are always strictly positive and finite.
#[test]
fn gamma_samples_positive() {
    let mut meta = Prng::seed_from_u64(0x4e75_0001);
    for _ in 0..48 {
        let alpha = meta.gen_range(0.1f64..20.0);
        let beta = meta.gen_range(0.01f64..10.0);
        let seed = meta.next_u64();
        let g = GammaSampler::new(alpha, beta);
        let mut rng = Prng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = g.sample(&mut rng);
            assert!(x.is_finite());
            assert!(x > 0.0, "sample {x} for α={alpha}, β={beta}");
        }
    }
}

/// Scaling law: gamma(α, c·β) has the same distribution as
/// c · gamma(α, β); with identical RNG streams the samples relate by
/// exactly the scale factor.
#[test]
fn gamma_scale_linearity() {
    let mut meta = Prng::seed_from_u64(0x4e75_0002);
    for _ in 0..64 {
        let alpha = meta.gen_range(0.5f64..10.0);
        let beta = meta.gen_range(0.1f64..5.0);
        let c = meta.gen_range(0.1f64..10.0);
        let seed = meta.next_u64();
        let g1 = GammaSampler::new(alpha, beta);
        let g2 = GammaSampler::new(alpha, beta * c);
        let mut r1 = Prng::seed_from_u64(seed);
        let mut r2 = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            let a = g1.sample(&mut r1) * c;
            let b = g2.sample(&mut r2);
            assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12);
        }
    }
}

/// Link accounting: messages and rows add up, delay is zero exactly for
/// the NoDelay profile, and the clock never runs backwards.
#[test]
fn link_accounting() {
    let mut meta = Prng::seed_from_u64(0x4e75_0003);
    for _ in 0..64 {
        let batches: Vec<usize> = {
            let n = meta.gen_range(1usize..20);
            (0..n).map(|_| meta.gen_range(0usize..50)).collect()
        };
        let profile = NetworkProfile::ALL[meta.gen_range(0usize..4)];
        let seed = meta.next_u64();
        let clock = shared_virtual();
        let link = Link::new(profile, Arc::clone(&clock), CostModel::default(), seed);
        let mut last = Duration::ZERO;
        let mut total_rows = 0u64;
        for &n in &batches {
            link.transfer_message(n);
            total_rows += n as u64;
            let now = clock.now();
            assert!(now >= last);
            last = now;
        }
        let stats = link.stats();
        assert_eq!(stats.messages, batches.len() as u64);
        assert_eq!(stats.rows, total_rows);
        if profile.name == "NoDelay" {
            assert_eq!(stats.delay, Duration::ZERO);
        } else {
            assert!(stats.delay > Duration::ZERO);
        }
        // The clock includes the non-latency transfer cost too.
        assert!(clock.now() >= stats.delay);
    }
}

/// transfer_rows(n, batch) sends ceil(n/batch) messages (or exactly one
/// empty message for n = 0) and exactly n rows.
#[test]
fn batching_message_count() {
    let mut meta = Prng::seed_from_u64(0x4e75_0004);
    for _ in 0..128 {
        let total = meta.gen_range(0usize..500);
        let batch = meta.gen_range(1usize..64);
        let clock = shared_virtual();
        let link = Link::new(
            NetworkProfile::GAMMA1,
            Arc::clone(&clock),
            CostModel::default(),
            1,
        );
        link.transfer_rows(total, batch);
        let stats = link.stats();
        let expected = if total == 0 { 1 } else { total.div_ceil(batch) as u64 };
        assert_eq!(stats.messages, expected);
        assert_eq!(stats.rows, total as u64);
    }
}

/// Fault accounting: on an active plan every attempt is counted exactly
/// once, as either a delivered message or one of the fault kinds, and the
/// clock never falls behind the injected delay.
#[test]
fn fault_accounting_invariant() {
    let mut meta = Prng::seed_from_u64(0x4e75_0007);
    for _ in 0..64 {
        let plan = random_fault_plan(&mut meta);
        let n = meta.gen_range(1usize..120);
        let profile = NetworkProfile::ALL[meta.gen_range(0usize..4)];
        let seed = meta.next_u64();
        let clock = shared_virtual();
        let link =
            Link::with_faults(profile, Arc::clone(&clock), CostModel::default(), seed, plan);
        let mut delivered = 0u64;
        for _ in 0..n {
            if link.try_transfer_message(meta.gen_range(0usize..5)).is_ok() {
                delivered += 1;
            }
        }
        let s = link.stats();
        if plan.is_active() {
            assert_eq!(s.attempts, n as u64);
        } else {
            assert_eq!(s.attempts, 0);
        }
        assert_eq!(s.messages, delivered);
        if plan.is_active() {
            assert_eq!(s.attempts, s.messages + s.faults());
        } else {
            assert_eq!(s.faults(), 0);
        }
        assert!(clock.now() >= s.delay);
    }
}

/// Determinism: a `(seed, plan)` pair fully determines the fault schedule
/// and the accumulated stats.
#[test]
fn fault_schedules_are_deterministic() {
    let mut meta = Prng::seed_from_u64(0x4e75_0008);
    for _ in 0..48 {
        let plan = random_fault_plan(&mut meta);
        let profile = NetworkProfile::ALL[meta.gen_range(0usize..4)];
        let seed = meta.next_u64();
        let mk = || {
            Link::with_faults(profile, shared_virtual(), CostModel::default(), seed, plan)
        };
        let (a, b) = (mk(), mk());
        let ra: Vec<_> = (0..96).map(|i| a.try_transfer_message(i % 4)).collect();
        let rb: Vec<_> = (0..96).map(|i| b.try_transfer_message(i % 4)).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.stats(), b.stats());
    }
}

/// Schedule/serialize parity: running the same message sequence through
/// `schedule_message` back-to-back must reproduce `try_transfer_message`
/// draw-for-draw — identical fault outcomes, identical stats (including
/// the injected delay, which is attributed once per attempt in both
/// paths), and a local timeline equal to the serialized clock.
#[test]
fn scheduled_transfers_mirror_serialized_stats() {
    let mut meta = Prng::seed_from_u64(0x4e75_0009);
    for _ in 0..48 {
        let plan = random_fault_plan(&mut meta);
        let profile = NetworkProfile::ALL[meta.gen_range(0usize..4)];
        let seed = meta.next_u64();
        let serialized =
            Link::with_faults(profile, shared_virtual(), CostModel::default(), seed, plan);
        let scheduled =
            Link::with_faults(profile, shared_virtual(), CostModel::default(), seed, plan);
        let mut start = Duration::ZERO;
        for i in 0..96usize {
            let a = serialized.try_transfer_message(i % 4);
            let (done, b) = scheduled.schedule_message(i % 4, start);
            assert_eq!(a, b, "attempt {i}: fault outcomes diverge");
            start = done;
        }
        assert_eq!(serialized.stats(), scheduled.stats());
        // Drops and outages occupy no link time in either path, so the
        // back-to-back timeline equals the serialized clock exactly.
        assert_eq!(serialized.clock().now(), scheduled.local_time());
    }
}

/// Delay attribution under retries: a dropped message contributes *no*
/// network delay (the loss is paid as the receiver's timeout, not link
/// delay), and each retried attempt that does transit — truncated or
/// delivered — charges its sampled delay exactly once. A
/// dropped-then-retried message therefore never double-counts.
#[test]
fn retried_drop_attributes_delay_once() {
    // All attempts dropped: whatever the retry count, zero delay.
    let all_drop = FaultPlan { drop_prob: 1.0, ..FaultPlan::NONE };
    let l = Link::with_faults(
        NetworkProfile::GAMMA3,
        shared_virtual(),
        CostModel::default(),
        7,
        all_drop,
    );
    let mut at = Duration::ZERO;
    for _ in 0..8 {
        assert!(l.try_transfer_message(3).is_err());
        let (done, r) = l.schedule_message(3, at);
        assert!(r.is_err());
        at = done;
    }
    assert_eq!(l.stats().delay, Duration::ZERO, "dropped attempts must charge no delay");
    assert_eq!(l.stats().dropped, 16);

    // All attempts truncated: delay grows by exactly one sample per
    // attempt — the serialized and scheduled halves of the same link see
    // the same per-attempt charge, never a doubled one.
    let all_trunc = FaultPlan { truncate_prob: 1.0, ..FaultPlan::NONE };
    let l = Link::with_faults(
        NetworkProfile::GAMMA3,
        shared_virtual(),
        CostModel::default(),
        7,
        all_trunc,
    );
    let mut prev = Duration::ZERO;
    let mut at = Duration::ZERO;
    for i in 0..8 {
        let charged = if i % 2 == 0 {
            assert!(l.try_transfer_message(3).is_err());
            l.stats().delay
        } else {
            let (done, r) = l.schedule_message(3, at);
            assert!(r.is_err());
            at = done;
            l.stats().delay
        };
        assert!(charged > prev, "attempt {i}: exactly one new delay sample expected");
        prev = charged;
    }
    assert_eq!(l.stats().truncated, 8);

    // Mixed drop-then-deliver retry chains: total delay equals the sum
    // over transiting attempts only (messages + truncations), which the
    // clock/timeline must dominate.
    let mixed = FaultPlan { drop_prob: 0.5, truncate_prob: 0.2, ..FaultPlan::NONE };
    let l = Link::with_faults(
        NetworkProfile::GAMMA2,
        shared_virtual(),
        CostModel::default(),
        11,
        mixed,
    );
    for _ in 0..64 {
        let _ = l.try_transfer_message(2);
    }
    let s = l.stats();
    assert_eq!(s.attempts, 64);
    assert!(s.dropped > 0, "p=0.5 over 64 attempts must drop something");
    assert!(l.clock().now() >= s.delay);
}

/// The mean of a DelayModel matches its analytic value.
#[test]
fn delay_model_mean() {
    let mut meta = Prng::seed_from_u64(0x4e75_0005);
    for _ in 0..128 {
        let ms = meta.gen_range(0.0f64..10.0);
        let c = DelayModel::Constant { ms };
        assert_eq!(c.mean_ms(), ms);
        let g = DelayModel::Gamma { alpha: 2.0, beta_ms: ms.max(0.01) };
        assert!((g.mean_ms() - 2.0 * ms.max(0.01)).abs() < 1e-12);
    }
}

/// Cost-model time conversions are monotone in their counters.
#[test]
fn cost_model_monotonicity() {
    use fedlake_netsim::cost::fedlake_relational_cost::CostStats;
    let mut meta = Prng::seed_from_u64(0x4e75_0006);
    for _ in 0..128 {
        let a = meta.gen_range(0u64..100_000);
        let b = meta.gen_range(0u64..100_000);
        let m = CostModel::default();
        let (lo, hi) = (a.min(b), a.max(b));
        let t_lo = m.rdb_time(&CostStats { rows_scanned: lo, ..Default::default() });
        let t_hi = m.rdb_time(&CostStats { rows_scanned: hi, ..Default::default() });
        assert!(t_lo <= t_hi);
        assert!(m.engine_filter_time(lo) <= m.engine_filter_time(hi));
        assert!(m.message_time(lo as usize) <= m.message_time(hi as usize));
    }
}
