//! The experiment workload.
//!
//! The paper explains that LSLOD's stock queries cannot exercise
//! Heuristic 1 (no two stars over one endpoint), so the authors *"created
//! five queries tailored for the heuristics"*, controlling (a) query
//! selectivity, (b) filters over indexed attributes, and (c) joins of
//! star-shaped sub-queries over indexed attributes (§3). This module
//! defines the analogous five queries over the synthetic lake, plus the
//! motivating-example query of Figure 1.

use crate::vocab::{class, pred};

/// One workload query with its experimental rationale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadQuery {
    /// Query id (`QM`, `Q1` … `Q5`).
    pub id: &'static str,
    /// What the query exercises, in the paper's terms.
    pub description: &'static str,
    /// The SPARQL text.
    pub sparql: String,
    /// Datasets the query touches (lets tests build subset lakes).
    pub datasets: &'static [&'static str],
}

/// The motivating example of Figure 1: an Affymetrix probeset star with an
/// unindexable species filter, joined to the Diseasome gene and disease
/// stars — which live at a single source, so their join can be pushed
/// down; the species filter cannot use an index and stays at the engine.
pub fn motivating() -> WorkloadQuery {
    WorkloadQuery {
        id: "QM",
        description: "Figure 1: species filter (not indexed, >15 % duplication) stays at \
                      the engine; the gene–disease join inside Diseasome is pushed down",
        sparql: format!(
            "SELECT ?ps ?gl ?dn WHERE {{\n\
               ?ps a <{pclass}> .\n\
               ?ps <{pgene}> ?g .\n\
               ?ps <{pspecies}> ?sp .\n\
               ?g a <{gclass}> .\n\
               ?g <{glabel}> ?gl .\n\
               ?g <{gdisease}> ?d .\n\
               ?d a <{dclass}> .\n\
               ?d <{dname}> ?dn .\n\
               FILTER(CONTAINS(?sp, \"sapiens\"))\n\
             }}",
            pclass = class("affymetrix", "Probeset"),
            pgene = pred("affymetrix", "gene"),
            pspecies = pred("affymetrix", "scientificName"),
            gclass = class("diseasome", "Gene"),
            glabel = pred("diseasome", "label"),
            gdisease = pred("diseasome", "associatedDisease"),
            dclass = class("diseasome", "Disease"),
            dname = pred("diseasome", "name"),
        ),
        datasets: &["affymetrix", "diseasome"],
    }
}

/// Q1 — Heuristic 2's favourable regime as stated: a single star with a
/// **low-selectivity** string instantiation over an indexed attribute
/// (ChEBI compound names; "acid" appears in ~80 % of them). The filter is
/// translatable to `LIKE '%acid%'` but cannot use the B-tree, so the
/// placement trade-off is pure: per-row filter evaluation is cheaper at
/// the engine, while pushing saves only the ~20 % of rows it drops — on a
/// fast network the engine placement wins (the paper's Q1 observation),
/// on a slow one the transfer saving dominates.
pub fn q1() -> WorkloadQuery {
    WorkloadQuery {
        id: "Q1",
        description: "single star, low-selectivity string instantiation on an indexed \
                      attribute; engine filtering beats RDB filtering on fast networks \
                      (paper: Q1 supports H2)",
        sparql: format!(
            "SELECT ?c ?n ?m WHERE {{\n\
               ?c a <{cclass}> .\n\
               ?c <{cname}> ?n .\n\
               ?c <{cmass}> ?m .\n\
               FILTER(CONTAINS(?n, \"acid\"))\n\
             }}",
            cclass = class("chebi", "Compound"),
            cname = pred("chebi", "name"),
            cmass = pred("chebi", "mass"),
        ),
        datasets: &["chebi"],
    }
}

/// Q2 — Heuristic 1's query: two stars over the single DrugBank endpoint
/// (targets and drugs) joined on the indexed `drug_target.drug` FK. The
/// ground `action` instantiation is part of the BGP, so both plan types
/// evaluate it at the source and the comparison isolates the join
/// placement: the unaware plan ships both full stars and joins at the
/// engine, the merged plan ships only the join result — roughly half the
/// rows. The paper reports that forcing the optimized merged SQL
/// approximately halves execution time versus the unaware plan, while
/// Ontario's naive translation *increases* it.
pub fn q2() -> WorkloadQuery {
    WorkloadQuery {
        id: "Q2",
        description: "two stars over one endpoint joined on an indexed FK; H1 pushes the \
                      join down (optimized merge ≈ halves time, naive merge increases it)",
        sparql: format!(
            "SELECT ?dn ?g WHERE {{\n\
               ?dt a <{tclass}> .\n\
               ?dt <{tdrug}> ?dr .\n\
               ?dt <{tgene}> ?g .\n\
               ?dt <{taction}> \"inhibitor\" .\n\
               ?dr a <{drclass}> .\n\
               ?dr <{drname}> ?dn .\n\
               ?dr <{drmass}> ?m .\n\
             }}",
            tclass = class("drugbank", "Target"),
            tdrug = pred("drugbank", "drug"),
            tgene = pred("drugbank", "gene"),
            taction = pred("drugbank", "action"),
            drclass = class("drugbank", "Drug"),
            drname = pred("drugbank", "name"),
            drmass = pred("drugbank", "molecularWeight"),
        ),
        datasets: &["drugbank"],
    }
}

/// Q3 — the Figure 2 query: an equality instantiation over an indexed
/// attribute (trial category) where pushing the filter lets the RDB use a
/// point index lookup — the case where the physical-design-aware plan wins
/// at every network setting and the unaware plan degrades sharply as the
/// latency grows.
pub fn q3() -> WorkloadQuery {
    WorkloadQuery {
        id: "Q3",
        description: "Figure 2: equality filter on an indexed attribute; the aware plan's \
                      pushed filter becomes an index lookup and beats engine filtering",
        sparql: format!(
            "SELECT ?t ?ti ?dn WHERE {{\n\
               ?t a <{tclass}> .\n\
               ?t <{ttitle}> ?ti .\n\
               ?t <{tcat}> ?cat .\n\
               ?t <{tcond}> ?d .\n\
               ?d a <{dclass}> .\n\
               ?d <{dname}> ?dn .\n\
               FILTER(?cat = \"cat-7\")\n\
             }}",
            tclass = class("linkedct", "Trial"),
            ttitle = pred("linkedct", "title"),
            tcat = pred("linkedct", "category"),
            tcond = pred("linkedct", "condition"),
            dclass = class("diseasome", "Disease"),
            dname = pred("diseasome", "name"),
        ),
        datasets: &["linkedct", "diseasome"],
    }
}

/// Q4 — two stars over the single SIDER endpoint (drug-effect ⋈ effect on
/// the indexed FK) under a skewed, unindexable frequency instantiation,
/// joined at the engine with the DrugBank drug star — H1 and cross-source
/// adaptive joins in one query.
pub fn q4() -> WorkloadQuery {
    WorkloadQuery {
        id: "Q4",
        description: "H1 merge inside SIDER plus an engine-level cross-source join to \
                      DrugBank; the frequency filter is skewed and never indexed",
        sparql: format!(
            "SELECT ?dn ?en WHERE {{\n\
               ?dr a <{drclass}> .\n\
               ?dr <{drname}> ?dn .\n\
               ?de a <{declass}> .\n\
               ?de <{dedrug}> ?dr .\n\
               ?de <{deeffect}> ?se .\n\
               ?de <{defreq}> ?fr .\n\
               ?se a <{seclass}> .\n\
               ?se <{sename}> ?en .\n\
               FILTER(?fr = \"very rare\")\n\
             }}",
            drclass = class("drugbank", "Drug"),
            drname = pred("drugbank", "name"),
            declass = class("sider", "DrugEffect"),
            dedrug = pred("sider", "drug"),
            deeffect = pred("sider", "effect"),
            defreq = pred("sider", "frequency"),
            seclass = class("sider", "SideEffect"),
            sename = pred("sider", "name"),
        ),
        datasets: &["drugbank", "sider"],
    }
}

/// Q5 — the low-selectivity, high-volume query: the large TCGA expression
/// star (numeric range filter, no index) joined at the engine with the
/// Diseasome gene–disease pair (merged by H1), stressing intermediate
/// result size under network delays.
pub fn q5() -> WorkloadQuery {
    WorkloadQuery {
        id: "Q5",
        description: "large intermediate results: TCGA expression star with a numeric range \
                      filter joined to the H1-merged Diseasome pair",
        sparql: format!(
            "SELECT ?x ?gl ?dn WHERE {{\n\
               ?x a <{xclass}> .\n\
               ?x <{xgene}> ?g .\n\
               ?x <{xvalue}> ?v .\n\
               ?g a <{gclass}> .\n\
               ?g <{glabel}> ?gl .\n\
               ?g <{gdisease}> ?d .\n\
               ?d a <{dclass}> .\n\
               ?d <{dname}> ?dn .\n\
               ?d <{dclasspred}> ?cl .\n\
               FILTER(?v > 3.0) .\n\
               FILTER(?cl = \"Cancer\")\n\
             }}",
            xclass = class("tcga", "Expression"),
            xgene = pred("tcga", "gene"),
            xvalue = pred("tcga", "value"),
            gclass = class("diseasome", "Gene"),
            glabel = pred("diseasome", "label"),
            gdisease = pred("diseasome", "associatedDisease"),
            dclass = class("diseasome", "Disease"),
            dname = pred("diseasome", "name"),
            dclasspred = pred("diseasome", "class"),
        ),
        datasets: &["tcga", "diseasome"],
    }
}

/// Q1–Q5, in order.
pub fn experiment_queries() -> Vec<WorkloadQuery> {
    vec![q1(), q2(), q3(), q4(), q5()]
}

/// The full workload: the motivating query plus Q1–Q5.
pub fn all() -> Vec<WorkloadQuery> {
    let mut v = vec![motivating()];
    v.extend(experiment_queries());
    v
}

/// Looks a query up by id (case-insensitive).
pub fn by_id(id: &str) -> Option<WorkloadQuery> {
    all().into_iter().find(|q| q.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_sparql::parser::parse_query;

    #[test]
    fn all_queries_parse() {
        for q in all() {
            let parsed = parse_query(&q.sparql);
            assert!(parsed.is_ok(), "{} failed to parse: {parsed:?}", q.id);
        }
    }

    #[test]
    fn all_queries_decompose_into_stars() {
        for q in all() {
            let parsed = parse_query(&q.sparql).unwrap();
            let dec = fedlake_core::decompose::decompose(&parsed).unwrap();
            assert!(!dec.stars.is_empty(), "{}", q.id);
        }
    }

    #[test]
    fn q2_has_two_stars_on_one_dataset() {
        let parsed = parse_query(&q2().sparql).unwrap();
        let dec = fedlake_core::decompose::decompose(&parsed).unwrap();
        assert_eq!(dec.stars.len(), 2);
        assert_eq!(q2().datasets, &["drugbank"]);
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(by_id("q3").unwrap().id, "Q3");
        assert_eq!(by_id("QM").unwrap().id, "QM");
        assert!(by_id("q9").is_none());
    }

    #[test]
    fn workload_has_six_queries() {
        assert_eq!(all().len(), 6);
        assert_eq!(experiment_queries().len(), 5);
    }
}
