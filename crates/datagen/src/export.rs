//! Lake export and import.
//!
//! The paper publishes its experiment data as SQL dumps on GitHub; this
//! module provides the equivalent interchange for the synthetic lake:
//! every relational source dumps to a standard SQL script
//! (`CREATE TABLE` / `CREATE INDEX` / `INSERT`) and every source's RDF
//! view to W3C N-Triples. The SQL dumps reload through the relational
//! engine's own parser, so a dumped lake round-trips exactly.

use fedlake_core::{DataLake, DataSource};
use fedlake_mapping::lift_database;
use fedlake_rdf::ntriples;
use fedlake_relational::{Database, DataType, SqlError, Value};
use std::fmt::Write as _;

/// One dumped artifact: a suggested file name and its content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportFile {
    /// Suggested file name (`<source>.sql` or `<source>.nt`).
    pub name: String,
    /// File content.
    pub content: String,
}

/// Dumps one database as a SQL script that recreates schema, indexes and
/// rows through [`Database::execute`].
pub fn dump_sql(db: &Database) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- SQL dump of database {}", db.name());
    for table_name in db.table_names() {
        let table = db.table(table_name).expect("listed table");
        let schema = &table.schema;
        // CREATE TABLE.
        let mut cols: Vec<String> = schema
            .columns
            .iter()
            .map(|c| {
                format!(
                    "{} {}{}",
                    c.name,
                    type_name(c.data_type),
                    if c.not_null { " NOT NULL" } else { "" }
                )
            })
            .collect();
        if !schema.primary_key.is_empty() {
            cols.push(format!("PRIMARY KEY ({})", schema.primary_key.join(", ")));
        }
        for fk in &schema.foreign_keys {
            cols.push(format!(
                "FOREIGN KEY ({}) REFERENCES {} ({})",
                fk.columns.join(", "),
                fk.ref_table,
                fk.ref_columns.join(", ")
            ));
        }
        let _ = writeln!(out, "CREATE TABLE {} ({});", table_name, cols.join(", "));
        // Secondary indexes (the PK index is implicit).
        for idx in table.indexes() {
            if idx.name.starts_with("pk_") {
                continue;
            }
            let columns: Vec<&str> = idx
                .key_columns
                .iter()
                .map(|&i| schema.columns[i].name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "CREATE {}INDEX {} ON {} ({});",
                if idx.unique { "UNIQUE " } else { "" },
                idx.name,
                table_name,
                columns.join(", ")
            );
        }
        // Rows, batched for readability.
        for (_, row) in table.iter() {
            let values: Vec<String> = row.iter().map(Value::to_string).collect();
            let _ = writeln!(out, "INSERT INTO {} VALUES ({});", table_name, values.join(", "));
        }
    }
    out
}

fn type_name(dt: DataType) -> &'static str {
    match dt {
        DataType::Int => "INT",
        DataType::Double => "DOUBLE",
        DataType::Text => "TEXT",
        DataType::Bool => "BOOL",
    }
}

/// Reloads a SQL dump into a fresh database.
pub fn load_sql(name: &str, dump: &str) -> Result<Database, SqlError> {
    let mut db = Database::new(name);
    for statement in split_statements(dump) {
        let stmt = statement
            .lines()
            .filter(|l| !l.trim_start().starts_with("--"))
            .collect::<Vec<_>>()
            .join("\n");
        if stmt.trim().is_empty() {
            continue;
        }
        db.execute(&stmt)?;
    }
    Ok(db)
}

/// Splits a script on `;` statement terminators, respecting
/// single-quoted strings (with `''` escaping) so literals containing `;`
/// survive.
fn split_statements(dump: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut chars = dump.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                current.push(c);
                if in_string && chars.peek() == Some(&'\'') {
                    // Escaped quote: consume the second one, stay inside.
                    current.push(chars.next().expect("peeked"));
                } else {
                    in_string = !in_string;
                }
            }
            ';' if !in_string => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Dumps the whole lake: one `.sql` file per relational source and one
/// `.nt` file per source's RDF view (native graph or lifted mapping).
pub fn dump_lake(lake: &DataLake) -> Vec<ExportFile> {
    let mut out = Vec::new();
    for source in lake.sources() {
        match source {
            DataSource::Relational { id, db, mapping } => {
                out.push(ExportFile {
                    name: format!("{id}.sql"),
                    content: dump_sql(db),
                });
                out.push(ExportFile {
                    name: format!("{id}.nt"),
                    content: ntriples::serialize(&lift_database(db, mapping)),
                });
            }
            DataSource::Sparql { id, graph } => {
                out.push(ExportFile {
                    name: format!("{id}.nt"),
                    content: ntriples::serialize(graph),
                });
            }
        }
    }
    out
}

/// Writes the dump to a directory.
pub fn write_lake(lake: &DataLake, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for file in dump_lake(lake) {
        let path = dir.join(&file.name);
        std::fs::write(&path, &file.content)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_lake_with, LakeConfig};

    fn small() -> LakeConfig {
        LakeConfig { scale: 0.05, ..Default::default() }
    }

    #[test]
    fn sql_dump_roundtrips() {
        let lake = build_lake_with(&small(), &["diseasome"]);
        let Some(DataSource::Relational { db, .. }) = lake.source("diseasome") else {
            panic!("diseasome must be relational");
        };
        let dump = dump_sql(db);
        assert!(dump.contains("CREATE TABLE disease"));
        assert!(dump.contains("CREATE INDEX idx_gene_disease ON gene (disease)"));
        let reloaded = load_sql("diseasome", &dump).unwrap();
        // Same tables, same row counts, same indexes, same query answers.
        assert_eq!(db.table_names(), reloaded.table_names());
        for t in db.table_names() {
            assert_eq!(
                db.table(t).unwrap().len(),
                reloaded.table(t).unwrap().len(),
                "table {t}"
            );
            assert_eq!(
                db.table(t).unwrap().indexes().len(),
                reloaded.table(t).unwrap().indexes().len(),
                "indexes of {t}"
            );
        }
        let q = "SELECT g.label, d.name FROM gene g JOIN disease d ON g.disease = d.id \
                 ORDER BY g.id LIMIT 10";
        assert_eq!(db.query(q).unwrap().rows, reloaded.query(q).unwrap().rows);
    }

    #[test]
    fn sql_dump_escapes_strings() {
        let mut db = Database::new("esc");
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        db.insert_row("t", vec![Value::Int(1), Value::text("o'clock; DROP")]).unwrap();
        let dump = dump_sql(&db);
        let reloaded = load_sql("esc", &dump).unwrap();
        let rs = reloaded.query("SELECT v FROM t").unwrap();
        assert_eq!(rs.rows[0][0], Value::text("o'clock; DROP"));
    }

    #[test]
    fn nt_dump_parses_back() {
        let lake = build_lake_with(&small(), &["chebi"]);
        let files = dump_lake(&lake);
        let nt = files.iter().find(|f| f.name == "chebi.nt").unwrap();
        let graph = fedlake_rdf::ntriples::parse(&nt.content).unwrap();
        assert!(!graph.is_empty());
        assert_eq!(graph.len(), lake.oracle_graph().len());
    }

    #[test]
    fn dump_lake_covers_all_sources() {
        let cfg = LakeConfig { rdf_sources: vec!["drugbank".into()], ..small() };
        let lake = build_lake_with(&cfg, &["drugbank", "chebi"]);
        let files = dump_lake(&lake);
        let names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        // drugbank is RDF-mounted: only .nt; chebi relational: .sql + .nt.
        assert!(names.contains(&"drugbank.nt"));
        assert!(!names.contains(&"drugbank.sql"));
        assert!(names.contains(&"chebi.sql"));
        assert!(names.contains(&"chebi.nt"));
    }

    #[test]
    fn write_lake_to_disk() {
        let dir = std::env::temp_dir().join(format!("fedlake_export_{}", std::process::id()));
        let lake = build_lake_with(&small(), &["sider"]);
        let paths = write_lake(&lake, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.exists());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn null_values_roundtrip() {
        let mut db = Database::new("n");
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT, m DOUBLE)").unwrap();
        db.insert_row("t", vec![Value::Int(1), Value::Null, Value::Double(1.5)]).unwrap();
        let reloaded = load_sql("n", &dump_sql(&db)).unwrap();
        let rs = reloaded.query("SELECT v, m FROM t").unwrap();
        assert_eq!(rs.rows[0][0], Value::Null);
        assert_eq!(rs.rows[0][1], Value::Double(1.5));
    }
}
