//! The ten dataset builders.
//!
//! Each builder fills a 3NF relational database and its RML-style mapping.
//! Index creation follows the paper's policy (§1/§3): primary keys are
//! always indexed; join attributes (FK columns) get the "additional
//! indexes" when [`LakeConfig::join_indexes`] is set; selection attributes
//! get one only when they pass the 15 %-duplication rule
//! ([`fedlake_relational::stats`]) — which is exactly why the Affymetrix
//! species name ends up unindexed.

use crate::vocab::{class, entity_template, pred, shared};
use crate::LakeConfig;
use fedlake_mapping::{DatasetMapping, IriTemplate, TableMapping};
use fedlake_relational::stats::column_stats;
use fedlake_prng::Prng;
use fedlake_relational::{Database, Value};

/// Builds one dataset by id. Panics on unknown ids (the caller iterates
/// [`crate::DATASET_IDS`]).
pub fn build_dataset(config: &LakeConfig, id: &str) -> (Database, DatasetMapping) {
    match id {
        "chebi" => chebi(config),
        "kegg" => kegg(config),
        "drugbank" => drugbank(config),
        "diseasome" => diseasome(config),
        "sider" => sider(config),
        "tcga" => tcga(config),
        "affymetrix" => affymetrix(config),
        "linkedct" => linkedct(config),
        "medicare" => medicare(config),
        "dailymed" => dailymed(config),
        other => panic!("unknown dataset {other}"),
    }
}

/// Entity counts shared across datasets (referential integrity of the
/// cross-dataset links depends on these).
pub fn gene_count(config: &LakeConfig) -> usize {
    config.rows(1500)
}

/// Number of diseases minted by Diseasome.
pub fn disease_count(config: &LakeConfig) -> usize {
    config.rows(400)
}

/// Number of drugs minted by DrugBank.
pub fn drug_count(config: &LakeConfig) -> usize {
    config.rows(1200)
}

fn rng_for(config: &LakeConfig, dataset: &str) -> Prng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in dataset.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    Prng::seed_from_u64(config.seed ^ h)
}

/// Creates a selection index only when the paper's 15 % rule allows it.
fn selection_index(db: &mut Database, table: &str, col: &str) {
    let indexable = db
        .table(table)
        .and_then(|t| column_stats(t, col))
        .is_some_and(|s| s.is_indexable());
    if indexable {
        db.create_index(table, &format!("idx_{table}_{col}"), &[col.to_string()], false)
            .expect("selection index creation");
    }
}

fn join_index(db: &mut Database, table: &str, col: &str) {
    db.create_index(table, &format!("idx_{table}_{col}"), &[col.to_string()], false)
        .expect("join index creation");
}

fn pick<'a>(rng: &mut Prng, weighted: &[(&'a str, u32)]) -> &'a str {
    let total: u32 = weighted.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (v, w) in weighted {
        if roll < *w {
            return v;
        }
        roll -= w;
    }
    weighted.last().expect("non-empty weights").0
}

const DISEASE_KINDS: [(&str, u32); 5] = [
    ("carcinoma", 2),
    ("syndrome", 3),
    ("deficiency", 2),
    ("disorder", 2),
    ("anemia", 1),
];

const SPECIES: [(&str, u32); 4] = [
    // "Homo sapiens" in ~40 % of records — above the 15 % threshold, so
    // the species attribute must not receive an index (§1).
    ("Homo sapiens", 40),
    ("Mus musculus", 30),
    ("Rattus norvegicus", 20),
    ("Danio rerio", 10),
];

fn chebi(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "chebi");
    let mut db = Database::new("chebi");
    db.execute(
        "CREATE TABLE compound (id TEXT PRIMARY KEY, name TEXT NOT NULL, \
         status TEXT, charge INT, mass DOUBLE)",
    )
    .expect("chebi ddl");
    let n = config.rows(2000);
    for i in 0..n {
        let status = pick(&mut rng, &[("checked", 60), ("submitted", 30), ("obsolete", 10)]);
        let charge = rng.gen_range(-3i64..=3);
        let mass = rng.gen_range(50.0..900.0f64);
        // Low-selectivity suffixes: Q1 filters on "acid", which keeps most
        // rows — the regime where engine-side filtering beats RDB-side.
        let kind = pick(&mut rng, &[("acid", 80), ("ester", 10), ("amine", 5), ("oxide", 5)]);
        db.insert_row(
            "compound",
            vec![
                Value::text(format!("ch{i}")),
                Value::text(format!("chebi-compound-{i} {kind}")),
                Value::text(status),
                Value::Int(charge),
                Value::Double((mass * 100.0).round() / 100.0),
            ],
        )
        .expect("chebi insert");
    }
    if config.selection_indexes {
        selection_index(&mut db, "compound", "name");
        selection_index(&mut db, "compound", "status"); // rejected: skewed
    }
    let mapping = DatasetMapping::new("chebi").with_table(
        TableMapping::new(
            "compound",
            class("chebi", "Compound"),
            IriTemplate::new(entity_template("chebi", "compound")),
            "id",
        )
        .with_literal("name", &pred("chebi", "name"))
        .with_literal("status", &pred("chebi", "status"))
        .with_literal("charge", &pred("chebi", "charge"))
        .with_literal("mass", &pred("chebi", "mass")),
    );
    (db, mapping)
}

fn kegg(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "kegg");
    let mut db = Database::new("kegg");
    db.execute(
        "CREATE TABLE compound (id TEXT PRIMARY KEY, name TEXT NOT NULL, \
         formula TEXT, mass DOUBLE)",
    )
    .expect("kegg ddl");
    db.execute(
        "CREATE TABLE enzyme (id TEXT PRIMARY KEY, name TEXT NOT NULL, compound TEXT, \
         FOREIGN KEY (compound) REFERENCES compound (id))",
    )
    .expect("kegg ddl");
    let nc = config.rows(1500);
    for i in 0..nc {
        let mass = rng.gen_range(50.0..900.0f64);
        db.insert_row(
            "compound",
            vec![
                Value::text(format!("kc{i}")),
                Value::text(format!("kegg-compound-{i}")),
                Value::text(format!("C{}H{}O{}", rng.gen_range(1..40), rng.gen_range(1..60), rng.gen_range(0..10))),
                Value::Double((mass * 100.0).round() / 100.0),
            ],
        )
        .expect("kegg insert");
    }
    let ne = config.rows(800);
    for i in 0..ne {
        let c = rng.gen_range(0..nc);
        db.insert_row(
            "enzyme",
            vec![
                Value::text(format!("ke{i}")),
                Value::text(format!("enzyme-{i}")),
                Value::text(format!("kc{c}")),
            ],
        )
        .expect("kegg insert");
    }
    if config.join_indexes {
        join_index(&mut db, "enzyme", "compound");
    }
    if config.selection_indexes {
        selection_index(&mut db, "compound", "name");
    }
    let compound_tmpl = IriTemplate::new(entity_template("kegg", "compound"));
    let mapping = DatasetMapping::new("kegg")
        .with_table(
            TableMapping::new(
                "compound",
                class("kegg", "Compound"),
                compound_tmpl.clone(),
                "id",
            )
            .with_literal("name", &pred("kegg", "name"))
            .with_literal("formula", &pred("kegg", "formula"))
            .with_literal("mass", &pred("kegg", "mass")),
        )
        .with_table(
            TableMapping::new(
                "enzyme",
                class("kegg", "Enzyme"),
                IriTemplate::new(entity_template("kegg", "enzyme")),
                "id",
            )
            .with_literal("name", &pred("kegg", "name"))
            .with_reference("compound", &pred("kegg", "substrate"), compound_tmpl),
        );
    (db, mapping)
}

fn drugbank(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "drugbank");
    let mut db = Database::new("drugbank");
    db.execute(
        "CREATE TABLE drug (id TEXT PRIMARY KEY, name TEXT NOT NULL, mass DOUBLE, \
         formula TEXT)",
    )
    .expect("drugbank ddl");
    db.execute(
        "CREATE TABLE drug_target (id TEXT PRIMARY KEY, drug TEXT NOT NULL, \
         gene TEXT NOT NULL, action TEXT, \
         FOREIGN KEY (drug) REFERENCES drug (id))",
    )
    .expect("drugbank ddl");
    let nd = drug_count(config);
    for i in 0..nd {
        let mass = rng.gen_range(100.0..800.0f64);
        db.insert_row(
            "drug",
            vec![
                Value::text(format!("dr{i}")),
                Value::text(format!("drug-{i}-{}", pick(&mut rng, &[("mab", 2), ("nib", 2), ("statin", 1), ("cillin", 1), ("azole", 1)]))),
                Value::Double((mass * 100.0).round() / 100.0),
                Value::text(format!("C{}H{}N{}", rng.gen_range(5..40), rng.gen_range(5..60), rng.gen_range(0..8))),
            ],
        )
        .expect("drugbank insert");
    }
    let nt = config.rows(2000);
    let ng = gene_count(config);
    for i in 0..nt {
        db.insert_row(
            "drug_target",
            vec![
                Value::text(format!("dt{i}")),
                Value::text(format!("dr{}", rng.gen_range(0..nd))),
                Value::text(format!("g{}", rng.gen_range(0..ng))),
                Value::text(pick(&mut rng, &[("inhibitor", 50), ("agonist", 30), ("antagonist", 20)])),
            ],
        )
        .expect("drugbank insert");
    }
    if config.join_indexes {
        join_index(&mut db, "drug_target", "drug");
        join_index(&mut db, "drug_target", "gene");
    }
    if config.selection_indexes {
        selection_index(&mut db, "drug", "name");
    }
    let mapping = DatasetMapping::new("drugbank")
        .with_table(
            TableMapping::new(
                "drug",
                class("drugbank", "Drug"),
                IriTemplate::new(shared::drug_template()),
                "id",
            )
            .with_literal("name", &pred("drugbank", "name"))
            .with_literal("mass", &pred("drugbank", "molecularWeight"))
            .with_literal("formula", &pred("drugbank", "formula")),
        )
        .with_table(
            TableMapping::new(
                "drug_target",
                class("drugbank", "Target"),
                IriTemplate::new(entity_template("drugbank", "target")),
                "id",
            )
            .with_reference("drug", &pred("drugbank", "drug"), IriTemplate::new(shared::drug_template()))
            .with_reference("gene", &pred("drugbank", "gene"), IriTemplate::new(shared::gene_template()))
            .with_literal("action", &pred("drugbank", "action")),
        );
    (db, mapping)
}

/// The logical Diseasome content, shared by the normalized (3NF) and
/// denormalized builders so both physical designs hold identical data —
/// the §5 "not normalized tables" study depends on that.
struct DiseasomeContent {
    /// (id, name, class, size)
    diseases: Vec<(String, String, &'static str, i64)>,
    /// (id, label, chromosome, disease id)
    genes: Vec<(String, String, String, String)>,
}

fn diseasome_content(config: &LakeConfig) -> DiseasomeContent {
    let mut rng = rng_for(config, "diseasome");
    let nd = disease_count(config);
    let mut diseases = Vec::with_capacity(nd);
    for i in 0..nd {
        let kind = pick(&mut rng, &DISEASE_KINDS);
        let cls = pick(
            &mut rng,
            &[("Cancer", 25), ("Metabolic", 20), ("Neurological", 20), ("Cardiovascular", 15), ("Immunological", 10), ("Unclassified", 10)],
        );
        diseases.push((
            format!("d{i}"),
            format!("disease-{i} {kind}"),
            cls,
            rng.gen_range(1i64..200),
        ));
    }
    let ng = gene_count(config);
    let mut genes = Vec::with_capacity(ng);
    for i in 0..ng {
        genes.push((
            format!("g{i}"),
            format!("GENE{i}"),
            format!("chr{}", rng.gen_range(1..=23)),
            format!("d{}", rng.gen_range(0..nd)),
        ));
    }
    DiseasomeContent { diseases, genes }
}

fn diseasome(config: &LakeConfig) -> (Database, DatasetMapping) {
    if config.denormalized.iter().any(|d| d == "diseasome") {
        return diseasome_denormalized(config);
    }
    let content = diseasome_content(config);
    let mut db = Database::new("diseasome");
    db.execute(
        "CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT NOT NULL, \
         class TEXT, size INT)",
    )
    .expect("diseasome ddl");
    db.execute(
        "CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT NOT NULL, \
         chromosome TEXT, disease TEXT NOT NULL, \
         FOREIGN KEY (disease) REFERENCES disease (id))",
    )
    .expect("diseasome ddl");
    for (id, name, cls, size) in &content.diseases {
        db.insert_row(
            "disease",
            vec![
                Value::text(id.clone()),
                Value::text(name.clone()),
                Value::text(*cls),
                Value::Int(*size),
            ],
        )
        .expect("diseasome insert");
    }
    for (id, label, chrom, disease) in &content.genes {
        db.insert_row(
            "gene",
            vec![
                Value::text(id.clone()),
                Value::text(label.clone()),
                Value::text(chrom.clone()),
                Value::text(disease.clone()),
            ],
        )
        .expect("diseasome insert");
    }
    if config.join_indexes {
        // The motivating example's pushed-down join: gene.disease.
        join_index(&mut db, "gene", "disease");
    }
    if config.selection_indexes {
        selection_index(&mut db, "disease", "name");
        selection_index(&mut db, "gene", "label");
        selection_index(&mut db, "disease", "class"); // rejected: skewed
    }
    let mapping = DatasetMapping::new("diseasome")
        .with_table(
            TableMapping::new(
                "disease",
                class("diseasome", "Disease"),
                IriTemplate::new(shared::disease_template()),
                "id",
            )
            .with_literal("name", &pred("diseasome", "name"))
            .with_literal("class", &pred("diseasome", "class"))
            .with_literal("size", &pred("diseasome", "size")),
        )
        .with_table(
            TableMapping::new(
                "gene",
                class("diseasome", "Gene"),
                IriTemplate::new(shared::gene_template()),
                "id",
            )
            .with_literal("label", &pred("diseasome", "label"))
            .with_literal("chromosome", &pred("diseasome", "chromosome"))
            .with_reference(
                "disease",
                &pred("diseasome", "associatedDisease"),
                IriTemplate::new(shared::disease_template()),
            ),
        );
    (db, mapping)
}

/// The denormalized physical design of §5's final research question: one
/// wide `gene_disease` table carrying the gene columns plus its disease's
/// columns, with TWO class mappings over the same table. A Gene–Disease
/// query then needs no join at all at this source.
fn diseasome_denormalized(config: &LakeConfig) -> (Database, DatasetMapping) {
    let content = diseasome_content(config);
    let mut db = Database::new("diseasome");
    db.execute(
        "CREATE TABLE gene_disease (id TEXT PRIMARY KEY, label TEXT NOT NULL, \
         chromosome TEXT, disease TEXT NOT NULL, disease_name TEXT NOT NULL, \
         disease_class TEXT, disease_size INT)",
    )
    .expect("diseasome ddl");
    for (id, label, chrom, disease) in &content.genes {
        let (_, dname, dclass, dsize) = content
            .diseases
            .iter()
            .find(|(did, ..)| did == disease)
            .expect("generated FK resolves");
        db.insert_row(
            "gene_disease",
            vec![
                Value::text(id.clone()),
                Value::text(label.clone()),
                Value::text(chrom.clone()),
                Value::text(disease.clone()),
                Value::text(dname.clone()),
                Value::text(*dclass),
                Value::Int(*dsize),
            ],
        )
        .expect("diseasome insert");
    }
    if config.join_indexes {
        join_index(&mut db, "gene_disease", "disease");
    }
    if config.selection_indexes {
        selection_index(&mut db, "gene_disease", "label");
        selection_index(&mut db, "gene_disease", "disease_name"); // duplicated → rule decides
        selection_index(&mut db, "gene_disease", "disease_class"); // rejected: skewed
    }
    // Two classes over one table: the gene's subject is the primary key,
    // the disease's subject is the (duplicated) FK column. Lifting dedupes
    // the repeated disease triples by RDF set semantics.
    let mapping = DatasetMapping::new("diseasome")
        .with_table(
            TableMapping::new(
                "gene_disease",
                class("diseasome", "Gene"),
                IriTemplate::new(shared::gene_template()),
                "id",
            )
            .with_literal("label", &pred("diseasome", "label"))
            .with_literal("chromosome", &pred("diseasome", "chromosome"))
            .with_reference(
                "disease",
                &pred("diseasome", "associatedDisease"),
                IriTemplate::new(shared::disease_template()),
            ),
        )
        .with_table(
            TableMapping::new(
                "gene_disease",
                class("diseasome", "Disease"),
                IriTemplate::new(shared::disease_template()),
                "disease",
            )
            .with_literal("disease_name", &pred("diseasome", "name"))
            .with_literal("disease_class", &pred("diseasome", "class"))
            .with_literal("disease_size", &pred("diseasome", "size")),
        );
    (db, mapping)
}

fn sider(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "sider");
    let mut db = Database::new("sider");
    db.execute("CREATE TABLE side_effect (id TEXT PRIMARY KEY, name TEXT NOT NULL)")
        .expect("sider ddl");
    db.execute(
        "CREATE TABLE drug_effect (id TEXT PRIMARY KEY, drug TEXT NOT NULL, \
         effect TEXT NOT NULL, frequency TEXT, \
         FOREIGN KEY (effect) REFERENCES side_effect (id))",
    )
    .expect("sider ddl");
    let ns = config.rows(300);
    for i in 0..ns {
        db.insert_row(
            "side_effect",
            vec![Value::text(format!("se{i}")), Value::text(format!("effect-{i}"))],
        )
        .expect("sider insert");
    }
    let nd = drug_count(config);
    let ne = config.rows(3000);
    for i in 0..ne {
        db.insert_row(
            "drug_effect",
            vec![
                Value::text(format!("de{i}")),
                Value::text(format!("dr{}", rng.gen_range(0..nd))),
                Value::text(format!("se{}", rng.gen_range(0..ns))),
                Value::text(pick(&mut rng, &[("common", 50), ("rare", 30), ("very rare", 20)])),
            ],
        )
        .expect("sider insert");
    }
    if config.join_indexes {
        join_index(&mut db, "drug_effect", "drug");
        join_index(&mut db, "drug_effect", "effect");
    }
    let mapping = DatasetMapping::new("sider")
        .with_table(
            TableMapping::new(
                "side_effect",
                class("sider", "SideEffect"),
                IriTemplate::new(entity_template("sider", "effect")),
                "id",
            )
            .with_literal("name", &pred("sider", "name")),
        )
        .with_table(
            TableMapping::new(
                "drug_effect",
                class("sider", "DrugEffect"),
                IriTemplate::new(entity_template("sider", "drugeffect")),
                "id",
            )
            .with_reference("drug", &pred("sider", "drug"), IriTemplate::new(shared::drug_template()))
            .with_reference("effect", &pred("sider", "effect"), IriTemplate::new(entity_template("sider", "effect")))
            .with_literal("frequency", &pred("sider", "frequency")),
        );
    (db, mapping)
}

fn tcga(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "tcga");
    let mut db = Database::new("tcga");
    db.execute(
        "CREATE TABLE patient (id TEXT PRIMARY KEY, gender TEXT, age INT, \
         tumor_site TEXT)",
    )
    .expect("tcga ddl");
    db.execute(
        "CREATE TABLE expression (id TEXT PRIMARY KEY, patient TEXT NOT NULL, \
         gene TEXT NOT NULL, value DOUBLE, \
         FOREIGN KEY (patient) REFERENCES patient (id))",
    )
    .expect("tcga ddl");
    let np = config.rows(500);
    for i in 0..np {
        db.insert_row(
            "patient",
            vec![
                Value::text(format!("p{i}")),
                Value::text(pick(&mut rng, &[("female", 52), ("male", 48)])),
                Value::Int(rng.gen_range(20i64..90)),
                Value::text(pick(
                    &mut rng,
                    &[("lung", 20), ("breast", 20), ("colon", 15), ("prostate", 15), ("skin", 10), ("brain", 10), ("kidney", 10)],
                )),
            ],
        )
        .expect("tcga insert");
    }
    let ng = gene_count(config);
    let nx = config.rows(5000);
    for i in 0..nx {
        db.insert_row(
            "expression",
            vec![
                Value::text(format!("x{i}")),
                Value::text(format!("p{}", rng.gen_range(0..np))),
                Value::text(format!("g{}", rng.gen_range(0..ng))),
                Value::Double((rng.gen_range(-4.0..4.0f64) * 1000.0).round() / 1000.0),
            ],
        )
        .expect("tcga insert");
    }
    if config.join_indexes {
        join_index(&mut db, "expression", "patient");
        join_index(&mut db, "expression", "gene");
    }
    let mapping = DatasetMapping::new("tcga")
        .with_table(
            TableMapping::new(
                "patient",
                class("tcga", "Patient"),
                IriTemplate::new(entity_template("tcga", "patient")),
                "id",
            )
            .with_literal("gender", &pred("tcga", "gender"))
            .with_literal("age", &pred("tcga", "age"))
            .with_literal("tumor_site", &pred("tcga", "tumorSite")),
        )
        .with_table(
            TableMapping::new(
                "expression",
                class("tcga", "Expression"),
                IriTemplate::new(entity_template("tcga", "expression")),
                "id",
            )
            .with_reference("patient", &pred("tcga", "patient"), IriTemplate::new(entity_template("tcga", "patient")))
            .with_reference("gene", &pred("tcga", "gene"), IriTemplate::new(shared::gene_template()))
            .with_literal("value", &pred("tcga", "value")),
        );
    (db, mapping)
}

fn affymetrix(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "affymetrix");
    let mut db = Database::new("affymetrix");
    db.execute(
        "CREATE TABLE probeset (id TEXT PRIMARY KEY, gene TEXT NOT NULL, \
         species TEXT NOT NULL, chip TEXT)",
    )
    .expect("affymetrix ddl");
    let ng = gene_count(config);
    let n = config.rows(3000);
    for i in 0..n {
        db.insert_row(
            "probeset",
            vec![
                Value::text(format!("ps{i}")),
                Value::text(format!("g{}", rng.gen_range(0..ng))),
                Value::text(pick(&mut rng, &SPECIES)),
                Value::text(pick(&mut rng, &[("HG-U133", 40), ("MG-430", 30), ("RG-230", 20), ("Zebrafish", 10)])),
            ],
        )
        .expect("affymetrix insert");
    }
    if config.join_indexes {
        join_index(&mut db, "probeset", "gene");
    }
    if config.selection_indexes {
        // §1: "The filter expression for the scientific name of the
        // species … is not indexed. No index is created since there are
        // values that are present in more than 15 % of the records."
        // selection_index applies the rule and rejects it.
        selection_index(&mut db, "probeset", "species");
    }
    let mapping = DatasetMapping::new("affymetrix").with_table(
        TableMapping::new(
            "probeset",
            class("affymetrix", "Probeset"),
            IriTemplate::new(entity_template("affymetrix", "probeset")),
            "id",
        )
        .with_reference("gene", &pred("affymetrix", "gene"), IriTemplate::new(shared::gene_template()))
        .with_literal("species", &pred("affymetrix", "scientificName"))
        .with_literal("chip", &pred("affymetrix", "chip")),
    );
    (db, mapping)
}

fn linkedct(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "linkedct");
    let mut db = Database::new("linkedct");
    db.execute(
        "CREATE TABLE trial (id TEXT PRIMARY KEY, title TEXT NOT NULL, \
         phase TEXT, category TEXT NOT NULL, condition TEXT NOT NULL)",
    )
    .expect("linkedct ddl");
    let nd = disease_count(config);
    let n = config.rows(2000);
    let ncat = 50.max(n / 40);
    for i in 0..n {
        db.insert_row(
            "trial",
            vec![
                Value::text(format!("t{i}")),
                Value::text(format!("trial-{i} {} study", pick(&mut rng, &DISEASE_KINDS))),
                Value::text(pick(&mut rng, &[("Phase 1", 25), ("Phase 2", 35), ("Phase 3", 25), ("Phase 4", 15)])),
                Value::text(format!("cat-{}", rng.gen_range(0..ncat))),
                Value::text(format!("d{}", rng.gen_range(0..nd))),
            ],
        )
        .expect("linkedct insert");
    }
    if config.join_indexes {
        join_index(&mut db, "trial", "condition");
    }
    if config.selection_indexes {
        selection_index(&mut db, "trial", "title");
        selection_index(&mut db, "trial", "category"); // ~2 % dup: accepted
        selection_index(&mut db, "trial", "phase"); // skewed: rejected
    }
    let mapping = DatasetMapping::new("linkedct").with_table(
        TableMapping::new(
            "trial",
            class("linkedct", "Trial"),
            IriTemplate::new(entity_template("linkedct", "trial")),
            "id",
        )
        .with_literal("title", &pred("linkedct", "title"))
        .with_literal("phase", &pred("linkedct", "phase"))
        .with_literal("category", &pred("linkedct", "category"))
        .with_reference(
            "condition",
            &pred("linkedct", "condition"),
            IriTemplate::new(shared::disease_template()),
        ),
    );
    (db, mapping)
}

fn medicare(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "medicare");
    let mut db = Database::new("medicare");
    db.execute(
        "CREATE TABLE provider (id TEXT PRIMARY KEY, name TEXT NOT NULL, state TEXT)",
    )
    .expect("medicare ddl");
    db.execute(
        "CREATE TABLE prescription (id TEXT PRIMARY KEY, provider TEXT NOT NULL, \
         drug TEXT NOT NULL, claim_count INT, \
         FOREIGN KEY (provider) REFERENCES provider (id))",
    )
    .expect("medicare ddl");
    let np = config.rows(400);
    for i in 0..np {
        db.insert_row(
            "provider",
            vec![
                Value::text(format!("pr{i}")),
                Value::text(format!("provider-{i}")),
                Value::text(format!("state-{}", rng.gen_range(0..30))),
            ],
        )
        .expect("medicare insert");
    }
    let ndr = drug_count(config);
    let n = config.rows(3000);
    for i in 0..n {
        db.insert_row(
            "prescription",
            vec![
                Value::text(format!("rx{i}")),
                Value::text(format!("pr{}", rng.gen_range(0..np))),
                Value::text(format!("dr{}", rng.gen_range(0..ndr))),
                Value::Int(rng.gen_range(1i64..500)),
            ],
        )
        .expect("medicare insert");
    }
    if config.join_indexes {
        join_index(&mut db, "prescription", "provider");
        join_index(&mut db, "prescription", "drug");
    }
    let mapping = DatasetMapping::new("medicare")
        .with_table(
            TableMapping::new(
                "provider",
                class("medicare", "Provider"),
                IriTemplate::new(entity_template("medicare", "provider")),
                "id",
            )
            .with_literal("name", &pred("medicare", "name"))
            .with_literal("state", &pred("medicare", "state")),
        )
        .with_table(
            TableMapping::new(
                "prescription",
                class("medicare", "Prescription"),
                IriTemplate::new(entity_template("medicare", "prescription")),
                "id",
            )
            .with_reference("provider", &pred("medicare", "provider"), IriTemplate::new(entity_template("medicare", "provider")))
            .with_reference("drug", &pred("medicare", "drug"), IriTemplate::new(shared::drug_template()))
            .with_literal("claim_count", &pred("medicare", "claimCount")),
        );
    (db, mapping)
}

fn dailymed(config: &LakeConfig) -> (Database, DatasetMapping) {
    let mut rng = rng_for(config, "dailymed");
    let mut db = Database::new("dailymed");
    db.execute(
        "CREATE TABLE label (id TEXT PRIMARY KEY, drug TEXT NOT NULL, \
         dosage TEXT, route TEXT)",
    )
    .expect("dailymed ddl");
    let nd = drug_count(config);
    let n = config.rows(1000);
    for i in 0..n {
        db.insert_row(
            "label",
            vec![
                Value::text(format!("lb{i}")),
                Value::text(format!("dr{}", rng.gen_range(0..nd))),
                Value::text(format!("{} mg", rng.gen_range(5..500))),
                Value::text(pick(&mut rng, &[("oral", 50), ("intravenous", 25), ("topical", 15), ("inhaled", 10)])),
            ],
        )
        .expect("dailymed insert");
    }
    if config.join_indexes {
        join_index(&mut db, "label", "drug");
    }
    let mapping = DatasetMapping::new("dailymed").with_table(
        TableMapping::new(
            "label",
            class("dailymed", "Label"),
            IriTemplate::new(entity_template("dailymed", "label")),
            "id",
        )
        .with_reference("drug", &pred("dailymed", "drug"), IriTemplate::new(shared::drug_template()))
        .with_literal("dosage", &pred("dailymed", "dosage"))
        .with_literal("route", &pred("dailymed", "route")),
    );
    (db, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LakeConfig {
        LakeConfig::small()
    }

    #[test]
    fn affymetrix_species_is_not_indexed() {
        // The paper's motivating case: Homo sapiens exceeds 15 % of the
        // records, so the 15 % rule must reject the index even though it
        // was requested as a selection attribute.
        let (db, _) = affymetrix(&cfg());
        assert!(!db.has_index_on("probeset", "species"));
        let stats = db.stats("probeset").unwrap();
        assert!(stats.column("species").unwrap().duplication_ratio > 0.15);
        // The join attribute IS indexed.
        assert!(db.has_index_on("probeset", "gene"));
    }

    #[test]
    fn skewed_attributes_rejected_distinct_accepted() {
        let (db, _) = chebi(&cfg());
        assert!(db.has_index_on("compound", "name"));
        assert!(!db.has_index_on("compound", "status"));
        let (db, _) = linkedct(&cfg());
        assert!(db.has_index_on("trial", "category"));
        assert!(!db.has_index_on("trial", "phase"));
        assert!(db.has_index_on("trial", "condition"));
    }

    #[test]
    fn diseasome_join_attr_indexed_per_config() {
        let (db, _) = diseasome(&cfg());
        assert!(db.has_index_on("gene", "disease"));
        let no_join = LakeConfig { join_indexes: false, ..cfg() };
        let (db, _) = diseasome(&no_join);
        assert!(!db.has_index_on("gene", "disease"));
    }

    #[test]
    fn cross_dataset_references_resolve() {
        // Every affymetrix gene reference must exist in diseasome.
        let config = cfg();
        let (affy, _) = affymetrix(&config);
        let (dis, _) = diseasome(&config);
        let genes = dis.table("gene").unwrap().len();
        let rs = affy.query("SELECT DISTINCT gene FROM probeset").unwrap();
        for row in &rs.rows {
            let g = row[0].as_str().unwrap();
            let idx: usize = g[1..].parse().unwrap();
            assert!(idx < genes, "dangling gene ref {g}");
        }
    }

    #[test]
    fn mappings_cover_all_tables() {
        let config = cfg();
        for id in crate::DATASET_IDS {
            let (db, mapping) = build_dataset(&config, id);
            for table in db.table_names() {
                assert!(
                    mapping.for_table(table).is_some(),
                    "{id}.{table} unmapped"
                );
            }
            assert_eq!(mapping.source_id, id);
        }
    }

    #[test]
    fn row_counts_scale() {
        let small = LakeConfig { scale: 0.1, ..Default::default() };
        let (db_small, _) = chebi(&small);
        let (db_big, _) = chebi(&LakeConfig::default());
        assert!(db_small.table("compound").unwrap().len() < db_big.table("compound").unwrap().len());
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        build_dataset(&cfg(), "nope");
    }
}
