//! The lake's vocabulary: class and predicate IRIs per dataset, plus the
//! shared entity namespaces that interlink datasets LOD-style.

/// Base IRI of the lake.
pub const BASE: &str = "http://lake.example/";

/// Vocabulary base.
pub const V: &str = "http://lake.example/vocab/";

/// A class IRI: `vocab/<Dataset>/<Class>`.
pub fn class(dataset: &str, name: &str) -> String {
    format!("{V}{dataset}/{name}")
}

/// A predicate IRI: `vocab/<dataset>/<predicate>`.
pub fn pred(dataset: &str, name: &str) -> String {
    format!("{V}{dataset}/{name}")
}

/// The entity IRI template pattern for a dataset's entity type, e.g.
/// `http://lake.example/diseasome/disease/{}`.
pub fn entity_template(dataset: &str, entity: &str) -> String {
    format!("{BASE}{dataset}/{entity}/{{}}")
}

/// Shared namespaces: genes and diseases are minted by Diseasome and
/// referenced from Affymetrix/TCGA/DrugBank/LinkedCT; drugs are minted by
/// DrugBank and referenced from SIDER/Medicare/DailyMed.
pub mod shared {
    use super::entity_template;

    /// The gene namespace (owned by Diseasome).
    pub fn gene_template() -> String {
        entity_template("diseasome", "gene")
    }

    /// The disease namespace (owned by Diseasome).
    pub fn disease_template() -> String {
        entity_template("diseasome", "disease")
    }

    /// The drug namespace (owned by DrugBank).
    pub fn drug_template() -> String {
        entity_template("drugbank", "drug")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_shapes() {
        assert_eq!(class("diseasome", "Disease"), "http://lake.example/vocab/diseasome/Disease");
        assert_eq!(pred("chebi", "mass"), "http://lake.example/vocab/chebi/mass");
        assert_eq!(
            entity_template("diseasome", "gene"),
            "http://lake.example/diseasome/gene/{}"
        );
        assert!(shared::drug_template().contains("drugbank/drug/"));
    }
}
