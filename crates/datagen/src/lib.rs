//! # fedlake-datagen
//!
//! A deterministic, seeded generator for an LSLOD-like life-science
//! Semantic Data Lake.
//!
//! The paper's evaluation uses the ten real-world datasets of the LSLOD
//! benchmark (life sciences Linked Open Data), each transformed to 3NF
//! relational tables in its own MySQL container, with indexes on primary
//! keys plus *"additional indexes for some attributes that are used for
//! joins or selections in the queries"*, and **no** index on attributes
//! where a value occurs in more than 15 % of records (the Affymetrix
//! species name being the paper's example).
//!
//! The LSLOD dumps are not redistributable here, so this crate generates a
//! synthetic lake with the same *shape*: ten datasets
//! ([`DATASET_IDS`]: ChEBI, KEGG, DrugBank, Diseasome, SIDER, TCGA,
//! Affymetrix, LinkedCT, Medicare, DailyMed), 3NF schemas with
//! foreign-key interlinks across datasets (gene, disease and drug
//! namespaces shared LOD-style), skewed low-cardinality attributes that
//! fail the 15 % indexing rule, and distinct-rich attributes that pass it.
//! Every dataset carries an RML-style mapping, so each can be mounted as a
//! relational source or as its RDF lifting — the two physical designs the
//! paper compares implicitly.
//!
//! The generated content is a deterministic function of
//! [`LakeConfig::seed`] and [`LakeConfig::scale`].

pub mod datasets;
pub mod export;
pub mod vocab;
pub mod workload;

use fedlake_core::{DataLake, DataSource};
use fedlake_mapping::lift_database;

/// The ten LSLOD datasets, in build order.
pub const DATASET_IDS: [&str; 10] = [
    "chebi",
    "kegg",
    "drugbank",
    "diseasome",
    "sider",
    "tcga",
    "affymetrix",
    "linkedct",
    "medicare",
    "dailymed",
];

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LakeConfig {
    /// RNG seed; the lake is a pure function of seed + scale + flags.
    pub seed: u64,
    /// Multiplies every base table's row count (1.0 ≈ 20k rows total).
    pub scale: f64,
    /// Create the paper's "additional indexes" on join attributes (FK
    /// columns). Turning this off is how the H1 ablation removes the
    /// merge opportunity.
    pub join_indexes: bool,
    /// Create the paper's "additional indexes" on selection attributes
    /// that pass the 15 % duplication rule.
    pub selection_indexes: bool,
    /// Dataset ids to mount as native RDF sources (their relational data
    /// is lifted); everything else is mounted relationally, as in §3.
    pub rdf_sources: Vec<String>,
    /// Dataset ids to build with a **denormalized** physical design
    /// instead of 3NF — the paper's §5 "not normalized tables" study.
    /// Currently supported: `diseasome`.
    pub denormalized: Vec<String>,
}

impl Default for LakeConfig {
    fn default() -> Self {
        LakeConfig {
            seed: 0x5EA_DA7A,
            scale: 1.0,
            join_indexes: true,
            selection_indexes: true,
            rdf_sources: Vec::new(),
            denormalized: Vec::new(),
        }
    }
}

impl LakeConfig {
    /// A small lake for fast tests (scale 0.2).
    pub fn small() -> Self {
        LakeConfig { scale: 0.2, ..Default::default() }
    }

    /// Scales a base row count.
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64) * self.scale).round().max(2.0) as usize
    }
}

/// Builds the full ten-dataset lake.
pub fn build_lake(config: &LakeConfig) -> DataLake {
    let mut lake = DataLake::new();
    for id in DATASET_IDS {
        add_dataset(&mut lake, config, id);
    }
    lake
}

/// Builds a lake restricted to the given datasets (tests use subsets).
pub fn build_lake_with(config: &LakeConfig, ids: &[&str]) -> DataLake {
    let mut lake = DataLake::new();
    for id in ids {
        add_dataset(&mut lake, config, id);
    }
    lake
}

fn add_dataset(lake: &mut DataLake, config: &LakeConfig, id: &str) {
    let (db, mapping) = datasets::build_dataset(config, id);
    if config.rdf_sources.iter().any(|s| s == id) {
        let graph = lift_database(&db, &mapping);
        lake.add_source(DataSource::sparql(id, graph));
    } else {
        lake.add_source(DataSource::relational(id, db, mapping));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_ten_datasets() {
        let lake = build_lake(&LakeConfig::small());
        assert_eq!(lake.len(), 10);
        for id in DATASET_IDS {
            assert!(lake.source(id).is_some(), "missing {id}");
        }
        assert!(!lake.molecule_templates().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_lake_with(&LakeConfig::small(), &["diseasome"]);
        let b = build_lake_with(&LakeConfig::small(), &["diseasome"]);
        let (da, db) = match (a.source("diseasome"), b.source("diseasome")) {
            (
                Some(DataSource::Relational { db: da, .. }),
                Some(DataSource::Relational { db: db_, .. }),
            ) => (da, db_),
            _ => panic!("diseasome must be relational by default"),
        };
        let ra = da.query("SELECT id, name FROM disease ORDER BY id LIMIT 20").unwrap();
        let rb = db.query("SELECT id, name FROM disease ORDER BY id LIMIT 20").unwrap();
        assert_eq!(ra.rows, rb.rows);
    }

    #[test]
    fn different_seed_changes_content() {
        let a = build_lake_with(&LakeConfig::small(), &["chebi"]);
        let cfg = LakeConfig { seed: 999, ..LakeConfig::small() };
        let b = build_lake_with(&cfg, &["chebi"]);
        let (da, db) = match (a.source("chebi"), b.source("chebi")) {
            (
                Some(DataSource::Relational { db: da, .. }),
                Some(DataSource::Relational { db: db_, .. }),
            ) => (da, db_),
            _ => panic!("chebi must be relational by default"),
        };
        let ra = da.query("SELECT mass FROM compound ORDER BY id LIMIT 20").unwrap();
        let rb = db.query("SELECT mass FROM compound ORDER BY id LIMIT 20").unwrap();
        assert_ne!(ra.rows, rb.rows);
    }

    #[test]
    fn scale_controls_row_counts() {
        let small = LakeConfig { scale: 0.1, ..Default::default() };
        let big = LakeConfig { scale: 0.5, ..Default::default() };
        assert!(small.rows(1000) < big.rows(1000));
        assert_eq!(LakeConfig::default().rows(1000), 1000);
    }

    #[test]
    fn rdf_source_option_lifts() {
        let cfg = LakeConfig {
            rdf_sources: vec!["drugbank".into()],
            ..LakeConfig::small()
        };
        let lake = build_lake_with(&cfg, &["drugbank", "diseasome"]);
        assert!(matches!(
            lake.source("drugbank"),
            Some(DataSource::Sparql { .. })
        ));
        assert!(matches!(
            lake.source("diseasome"),
            Some(DataSource::Relational { .. })
        ));
    }
}
