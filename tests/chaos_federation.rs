//! Seeded chaos suite: the federated engine under deterministic fault
//! injection.
//!
//! For every experiment query and network profile, `CHAOS_ITERS` randomly
//! generated fault schedules (message drops, truncated result streams,
//! latency spikes, N-message outages) are injected on all wrapper links.
//! A schedule the retry policy can absorb must not change the answers:
//! the sorted SPARQL CSV serialization is byte-identical to the fault-free
//! run. A schedule it cannot absorb must fail with
//! [`FedError::SourceUnavailable`] or [`FedError::Timeout`] — never a
//! panic, never silently wrong answers. Re-running any schedule with the
//! same seed reproduces the exact same [`fedlake_core::FedStats`].
//!
//! `CHAOS_ITERS` defaults to 32 (the tier-1 gate); raise it for soak runs,
//! e.g. `CHAOS_ITERS=256 cargo test --test chaos_federation`.

use fedlake_core::{
    FaultPlan, FedError, FedResult, FederatedEngine, OutageGroup, PlanConfig, PlanMode,
    RetryPolicy,
};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_prng::Prng;
use fedlake_sparql::parser::parse_query;
use std::time::Duration;

/// FNV-1a, to derive one independent meta-seed per (query, profile) cell.
fn mix(s: &str) -> u64 {
    s.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

fn chaos_iters() -> u64 {
    std::env::var("CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// `FEDLAKE_OVERLAP=1` runs the whole suite under the overlapped
/// (event-driven) schedule; the default exercises the serialized one.
/// tier-1 runs both: every chaos property must hold under either clock.
fn overlap_mode() -> bool {
    std::env::var("FEDLAKE_OVERLAP").is_ok_and(|v| v == "1")
}

/// `FEDLAKE_TRACE=1` runs the whole suite with the span recorder enabled.
/// Tracing is contractually passive, so every property must hold
/// unchanged — tier-1 runs one chaos pass this way to pin the contract
/// under fault injection.
fn tracing_mode() -> bool {
    std::env::var("FEDLAKE_TRACE").is_ok_and(|v| v == "1")
}

/// `FEDLAKE_REPLICAS=N` (N ≥ 2) replicates every source of the main chaos
/// property test N ways, so the recovery property is exercised with
/// per-replica links, seeds and failover in play. Only the property test
/// uses it: the targeted-outage test asserts exact single-endpoint attempt
/// counts that replication would legitimately change.
fn replicas_mode() -> Option<u32> {
    std::env::var("FEDLAKE_REPLICAS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
}

/// Answers as sorted SPARQL CSV — the byte-comparable canonical form.
fn sorted_csv(r: &FedResult) -> String {
    let mut rows = r.rows.clone();
    rows.sort_by_cached_key(|row| row.to_string());
    fedlake_core::results::to_sparql_csv(&r.vars, &rows)
}

/// A random fault schedule the retry policy (6 attempts) can usually
/// absorb: moderate probabilities, outages shorter than the budget.
fn random_plan(rng: &mut Prng) -> FaultPlan {
    FaultPlan {
        drop_prob: rng.gen_range(0.0..0.10),
        truncate_prob: rng.gen_range(0.0..0.08),
        spike_prob: rng.gen_range(0.0..0.20),
        spike_factor: rng.gen_range(1.0..12.0),
        outage_after: (rng.gen_range(0.0f64..1.0) < 0.5)
            .then(|| rng.gen_range(0u64..200)),
        outage_len: rng.gen_range(0u64..4),
    }
}

fn retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 6, ..Default::default() }
}

/// The tentpole property: for Q1–Q5 × all network profiles × CHAOS_ITERS
/// seeded fault schedules, a run that completes returns byte-identical
/// answers to the fault-free baseline, and a run that fails does so with a
/// fault error. Every 8th schedule is re-executed to pin determinism.
#[test]
fn recoverable_faults_preserve_answers() {
    let iters = chaos_iters();
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    for q in workload::experiment_queries() {
        let mut lake = build_lake_with(&lake_cfg, q.datasets);
        if let Some(n) = replicas_mode() {
            let ids: Vec<String> =
                lake.sources().iter().map(|s| s.id().to_string()).collect();
            for id in ids {
                lake.set_replicas(id, n);
            }
        }
        let ast = parse_query(&q.sparql).unwrap();
        for network in NetworkProfile::ALL {
            let mut config = PlanConfig::new(PlanMode::AWARE, network);
            config.retry = retry();
            config.overlap = overlap_mode();
            config.tracing = tracing_mode();
            let mut engine = FederatedEngine::new(lake.clone(), config);
            let planned = engine.plan(&ast).unwrap();
            let baseline = engine.execute_planned(&planned).unwrap();
            let label = |i| format!("{}/{}/schedule {i}", q.id, network.name);
            assert!(
                !baseline.stats.degraded
                    && baseline.stats.retries == 0
                    && baseline.stats.source_failures.is_empty(),
                "{}: fault-free baseline saw faults",
                label(-1i64)
            );
            let baseline_csv = sorted_csv(&baseline);
            // One meta-stream per (query, profile) cell keeps schedules
            // independent of iteration count and of the other cells.
            let mut rng =
                Prng::seed_from_u64(0xC4A0_5000 ^ mix(q.id) ^ mix(network.name).rotate_left(17));
            let mut recovered = 0u64;
            for i in 0..iters {
                let mut c = config;
                c.faults = random_plan(&mut rng);
                c.seed = rng.next_u64();
                engine.set_config(c);
                match engine.execute_planned(&planned) {
                    Ok(r) => {
                        assert_eq!(
                            sorted_csv(&r),
                            baseline_csv,
                            "{}: recovered answers diverge ({c:?})",
                            label(i as i64)
                        );
                        assert!(!r.stats.degraded, "{}: degraded without opt-in", label(i as i64));
                        recovered += 1;
                        if i % 8 == 0 {
                            let again = engine.execute_planned(&planned).unwrap();
                            assert_eq!(
                                again.stats,
                                r.stats,
                                "{}: same seed, different stats",
                                label(i as i64)
                            );
                        }
                    }
                    Err(FedError::SourceUnavailable { .. }) | Err(FedError::Timeout(_)) => {}
                    Err(e) => panic!("{}: unexpected error kind: {e}", label(i as i64)),
                }
            }
            // The schedules are tuned to be mostly absorbable; a suite
            // where most runs fail would not be testing recovery.
            assert!(
                recovered * 2 >= iters,
                "{}/{}: only {recovered}/{iters} schedules recovered",
                q.id,
                network.name
            );
        }
    }
}

/// An outage longer than the whole attempt budget is unrecoverable: the
/// strict mode fails with `SourceUnavailable` naming the source and the
/// exhausted budget; degraded mode returns the partial (here: empty)
/// answer set with accurate per-source failure accounting.
#[test]
fn unrecoverable_outage_fails_cleanly_or_degrades() {
    let q = workload::q1(); // single source: "chebi"
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    let mut config = PlanConfig::aware(NetworkProfile::GAMMA1);
    config.retry = retry();
    config.overlap = overlap_mode();
    config.tracing = tracing_mode();
    config.faults = FaultPlan {
        outage_after: Some(0),
        outage_len: u64::MAX,
        ..FaultPlan::NONE
    };
    let engine = FederatedEngine::new(lake.clone(), config);
    let err = engine.execute_sparql(&q.sparql).unwrap_err();
    match err {
        FedError::SourceUnavailable { ref source, attempts } => {
            assert_eq!(source, "chebi");
            assert_eq!(attempts, config.retry.max_attempts);
        }
        other => panic!("expected SourceUnavailable, got {other}"),
    }

    config.degraded_ok = true;
    let engine = FederatedEngine::new(lake, config);
    let r = engine.execute_sparql(&q.sparql).unwrap();
    assert!(r.stats.degraded);
    assert!(r.rows.is_empty(), "nothing was delivered before the outage");
    // Accounting: every attempt of the one failed message hit the outage,
    // and all but the last were retries.
    assert_eq!(
        r.stats.source_failures.get("chebi").copied(),
        Some(config.retry.max_attempts as u64)
    );
    assert_eq!(r.stats.retries, (config.retry.max_attempts - 1) as u64);
}

/// The per-query deadline: strict mode yields `Timeout`, degraded mode
/// keeps the answers produced before the deadline and flags the result.
#[test]
fn deadline_times_out_or_degrades() {
    let q = workload::q1();
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    let baseline =
        FederatedEngine::new(lake.clone(), PlanConfig::aware(NetworkProfile::GAMMA2))
            .execute_sparql(&q.sparql)
            .unwrap();
    assert!(baseline.stats.answers > 1, "Q1 must produce several answers");

    let mut config = PlanConfig::aware(NetworkProfile::GAMMA2);
    config.overlap = overlap_mode();
    config.tracing = tracing_mode();
    config.deadline = Some(Duration::from_micros(1));
    let engine = FederatedEngine::new(lake.clone(), config);
    match engine.execute_sparql(&q.sparql) {
        Err(FedError::Timeout(d)) => assert_eq!(d, Duration::from_micros(1)),
        other => panic!("expected Timeout, got {other:?}"),
    }

    config.degraded_ok = true;
    let engine = FederatedEngine::new(lake, config);
    let r = engine.execute_sparql(&q.sparql).unwrap();
    assert!(r.stats.degraded);
    assert!(
        r.stats.answers < baseline.stats.answers,
        "a 1µs deadline on a gamma network must cut the answer set"
    );
    assert_eq!(r.rows.len() as u64, r.stats.answers);
}

/// A deadline generous enough for the whole query changes nothing.
#[test]
fn slack_deadline_is_invisible() {
    let q = workload::q2();
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    let plain = FederatedEngine::new(lake.clone(), PlanConfig::aware(NetworkProfile::GAMMA1))
        .execute_sparql(&q.sparql)
        .unwrap();
    let mut config = PlanConfig::aware(NetworkProfile::GAMMA1);
    config.overlap = overlap_mode();
    config.tracing = tracing_mode();
    config.deadline = Some(Duration::from_secs(3600));
    config.degraded_ok = true;
    let bounded = FederatedEngine::new(lake, config).execute_sparql(&q.sparql).unwrap();
    assert!(!bounded.stats.degraded);
    assert_eq!(sorted_csv(&bounded), sorted_csv(&plain));
    assert_eq!(bounded.stats.execution_time, plain.stats.execution_time);
}

/// Per-source fault plans: an outage targeted at exactly one endpoint of a
/// two-source federation. A short outage the retry policy absorbs leaves
/// the answers byte-identical to the fault-free run with failures charged
/// only to the flaky source; an endless outage fails naming that source
/// (or, degraded, returns the partial answers) while the healthy source
/// keeps its link fault-free.
#[test]
fn targeted_outage_hits_only_the_flaky_source() {
    let q = workload::q3(); // two sources: "linkedct" + "diseasome"
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    let ast = parse_query(&q.sparql).unwrap();
    let mut config = PlanConfig::aware(NetworkProfile::GAMMA1);
    config.retry = retry();
    config.overlap = overlap_mode();
    config.tracing = tracing_mode();

    let engine = FederatedEngine::new(lake.clone(), config);
    let planned = engine.plan(&ast).unwrap();
    let baseline = engine.execute_planned(&planned).unwrap();
    assert!(baseline.stats.answers > 0, "Q3 must produce answers");

    // Recoverable: a 3-message outage against a 6-attempt budget.
    let mut engine = FederatedEngine::new(lake.clone(), config);
    engine.set_source_faults(
        "diseasome",
        FaultPlan { outage_after: Some(0), outage_len: 3, ..FaultPlan::NONE },
    );
    let r = engine.execute_planned(&planned).unwrap();
    assert_eq!(sorted_csv(&r), sorted_csv(&baseline), "recovered answers diverge");
    assert_eq!(
        r.stats.source_failures.keys().collect::<Vec<_>>(),
        ["diseasome"],
        "only the targeted source may fail"
    );
    assert_eq!(r.stats.source_failures["diseasome"], 3);
    assert_eq!(r.stats.retries, 3);

    // Unrecoverable: the targeted source never comes back.
    let mut engine = FederatedEngine::new(lake.clone(), config);
    engine.set_source_faults(
        "diseasome",
        FaultPlan { outage_after: Some(0), outage_len: u64::MAX, ..FaultPlan::NONE },
    );
    match engine.execute_planned(&planned).unwrap_err() {
        FedError::SourceUnavailable { ref source, attempts } => {
            assert_eq!(source, "diseasome");
            assert_eq!(attempts, config.retry.max_attempts);
        }
        other => panic!("expected SourceUnavailable, got {other}"),
    }

    // Degraded: the healthy source's partial work survives.
    config.degraded_ok = true;
    let mut engine = FederatedEngine::new(lake, config);
    engine.set_source_faults(
        "diseasome",
        FaultPlan { outage_after: Some(0), outage_len: u64::MAX, ..FaultPlan::NONE },
    );
    let r = engine.execute_planned(&planned).unwrap();
    assert!(r.stats.degraded);
    assert_eq!(
        r.stats.source_failures.keys().collect::<Vec<_>>(),
        ["diseasome"],
        "the healthy source's link must stay fault-free"
    );
}

/// Replica failover: one replica of a two-replica source is permanently
/// dark, yet the query completes *undegraded* with byte-identical answers
/// — the wrapper burns the retry budget on `diseasome#r0`, fails over to
/// `diseasome#r1`, and stays there. The failures feed the session health
/// registry, so the *next* plan routes to the healthy replica up front and
/// EXPLAIN says so.
#[test]
fn replica_failover_rescues_a_flaky_source() {
    let q = workload::q3(); // two sources: "linkedct" + "diseasome"
    let mut lake =
        build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    lake.set_replicas("diseasome", 2);
    let ast = parse_query(&q.sparql).unwrap();
    let mut config = PlanConfig::aware(NetworkProfile::GAMMA1);
    config.retry = retry();
    config.overlap = overlap_mode();
    config.tracing = tracing_mode();

    // Fault-free baseline over the same replicated lake.
    let engine = FederatedEngine::new(lake.clone(), config);
    let planned = engine.plan(&ast).unwrap();
    assert!(
        planned.skipped_sources.is_empty(),
        "nothing is degraded in a fresh session"
    );
    assert!(
        fedlake_core::explain::explain_plan(&planned.plan).contains("via diseasome#r0"),
        "a fresh session routes to the first replica in index order"
    );
    let baseline = engine.execute_planned(&planned).unwrap();
    assert!(baseline.stats.answers > 0, "Q3 must produce answers");

    // The primary replica never answers; the secondary rescues the query.
    let mut engine = FederatedEngine::new(lake.clone(), config);
    engine.set_source_faults(
        "diseasome#r0",
        FaultPlan { outage_after: Some(0), outage_len: u64::MAX, ..FaultPlan::NONE },
    );
    let r = engine.execute_planned(&planned).unwrap();
    assert!(!r.stats.degraded, "failover must rescue the query, not degrade it");
    assert_eq!(sorted_csv(&r), sorted_csv(&baseline), "failover answers diverge");
    // Replica failures are charged to the logical source: the full budget
    // on r0 (5 intra-replica retries + the failover switch), r1 clean.
    assert_eq!(
        r.stats.source_failures.keys().collect::<Vec<_>>(),
        ["diseasome"]
    );
    assert_eq!(
        r.stats.source_failures["diseasome"],
        config.retry.max_attempts as u64
    );
    assert_eq!(r.stats.retries, config.retry.max_attempts as u64);
    // Determinism: the same schedule reproduces the same stats.
    let again = engine.execute_planned(&planned).unwrap();
    assert_eq!(again.stats, r.stats, "same seed, different stats");

    // Health-aware re-planning: the recorded r0 failures reorder the
    // route, and EXPLAIN shows both the replica and the reason.
    let replanned = engine.plan(&ast).unwrap();
    assert!(
        fedlake_core::explain::explain_plan(&replanned.plan)
            .contains("via diseasome#r1 [healthiest first"),
        "the next plan must route around the dark replica"
    );
}

/// A correlated outage downs *every* replica of a source over the same
/// seeded window: strict mode fails naming the logical source with the
/// summed attempt budget; degraded mode returns the healthy source's
/// partial work with all failures charged to the logical source.
#[test]
fn correlated_outage_downs_all_replicas() {
    let q = workload::q3();
    let mut lake =
        build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    lake.set_replicas("diseasome", 2);
    let ast = parse_query(&q.sparql).unwrap();
    let mut config = PlanConfig::aware(NetworkProfile::GAMMA1);
    config.retry = retry();
    config.overlap = overlap_mode();
    config.tracing = tracing_mode();
    let group = OutageGroup {
        members: vec!["diseasome#r0".into(), "diseasome#r1".into()],
        seed: 7,
        window: 1, // start is seeded % window: the outage begins at once
        len: u64::MAX,
    };

    let mut engine = FederatedEngine::new(lake.clone(), config);
    engine.add_outage_group(group.clone());
    let planned = engine.plan(&ast).unwrap();
    match engine.execute_planned(&planned).unwrap_err() {
        FedError::SourceUnavailable { ref source, attempts } => {
            assert_eq!(source, "diseasome", "the error names the logical source");
            assert_eq!(
                attempts,
                2 * config.retry.max_attempts,
                "a full budget per replica"
            );
        }
        other => panic!("expected SourceUnavailable, got {other}"),
    }

    config.degraded_ok = true;
    let mut engine = FederatedEngine::new(lake, config);
    engine.add_outage_group(group);
    let r = engine.execute_planned(&planned).unwrap();
    assert!(r.stats.degraded);
    assert_eq!(
        r.stats.source_failures.keys().collect::<Vec<_>>(),
        ["diseasome"],
        "the healthy source's links must stay fault-free"
    );
    assert_eq!(
        r.stats.source_failures["diseasome"],
        2 * config.retry.max_attempts as u64,
        "both replicas' attempts fold into the logical id"
    );
    // Determinism across re-runs, correlated outage included.
    let again = engine.execute_planned(&planned).unwrap();
    assert_eq!(again.stats, r.stats, "same outage group, different stats");
}

/// Satellite regression: the final retry backoff is clamped at the
/// per-query deadline. With a 10 s backoff and a 5 ms deadline, a failing
/// source costs at most the deadline plus the in-flight attempts' timeouts
/// — never a multi-second pause charged past the deadline.
#[test]
fn retry_backoff_is_clamped_at_the_deadline() {
    let q = workload::q1(); // single source: "chebi"
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    let deadline = Duration::from_millis(5);
    let timeout = Duration::from_millis(1);
    let mut config = PlanConfig::aware(NetworkProfile::NO_DELAY);
    config.retry = RetryPolicy {
        max_attempts: 2,
        timeout,
        backoff: Duration::from_secs(10),
    };
    config.deadline = Some(deadline);
    config.degraded_ok = true;
    config.overlap = overlap_mode();
    config.tracing = tracing_mode();
    config.faults = FaultPlan {
        outage_after: Some(0),
        outage_len: u64::MAX,
        ..FaultPlan::NONE
    };
    let engine = FederatedEngine::new(lake, config);
    let r = engine.execute_sparql(&q.sparql).unwrap();
    assert!(r.stats.degraded);
    assert!(
        r.stats.execution_time <= deadline + 2 * timeout,
        "backoff must clamp at the deadline: took {:?}",
        r.stats.execution_time
    );
}

/// Serve-mode chaos: 8 clients run a mixed workload concurrently while
/// seeded faults hit every shared link and a correlated outage window
/// downs both Diseasome replicas. Sessions that recover (complete,
/// undegraded) must answer byte-identically to their fault-free solo
/// runs; sessions that degrade are accounted — exactly — in the server
/// rollup; and the whole chaotic serve run is reproducible bit for bit.
#[test]
fn serve_chaos_recovers_per_query() {
    use fedlake_serve::{run, solo_golden, Mix, ServeSpec};

    let spec = ServeSpec {
        clients: 8,
        queries_per_client: 1,
        mix: Mix::default(),
        seed: 13,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 4,
        deadline: None,
    };
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let mut lake = build_lake_with(&lake_cfg, &spec.mix.datasets());
    lake.set_replicas("diseasome", 2);

    let mut config = PlanConfig::aware(NetworkProfile::GAMMA1);
    config.retry = retry();
    config.degraded_ok = true;
    config.tracing = tracing_mode();
    config.faults = random_plan(&mut Prng::seed_from_u64(mix("serve-chaos")));
    let outage = OutageGroup {
        members: vec!["diseasome#r0".into(), "diseasome#r1".into()],
        seed: 11,
        window: 64,
        len: 8,
    };

    let serve_once = || {
        let mut engine = FederatedEngine::new(lake.clone(), config);
        engine.add_outage_group(outage.clone());
        run(&engine, &spec).unwrap()
    };
    let r = serve_once();

    // Fault-free goldens: same plan mode and network, reliable links.
    let mut clean = config;
    clean.faults = fedlake_core::FaultPlan::NONE;
    clean.degraded_ok = false;
    clean.tracing = false;

    let mut degraded_seen = 0u64;
    for (inst, out) in r.instances.iter().zip(&r.outcome.outcomes) {
        assert!(
            out.error.is_none(),
            "{}: degraded_ok sessions degrade, they never fail hard: {:?}",
            out.label,
            out.error
        );
        if out.degraded {
            degraded_seen += 1;
            continue;
        }
        let golden = solo_golden(&lake, clean, &inst.sparql).unwrap();
        assert_eq!(
            fedlake_serve::sorted_csv(&out.vars, &out.rows),
            fedlake_serve::sorted_csv(&golden.vars, &golden.rows),
            "{}: a recovered session must byte-match its fault-free solo run",
            out.label
        );
    }

    // Degraded accounting sums correctly in the rollup, and every
    // admitted session is accounted exactly once.
    let m = &r.outcome.metrics;
    assert_eq!(m.counter("serve.degraded"), degraded_seen);
    assert_eq!(
        m.counter("serve.admitted"),
        m.counter("serve.completed")
            + m.counter("serve.degraded")
            + m.counter("serve.timeouts")
            + m.counter("serve.failed"),
        "rollup: every admitted session lands in exactly one bucket"
    );
    assert_eq!(m.counter("serve.admitted"), spec.clients as u64);

    // Chaos, replicas and the outage window included, the serve run is a
    // pure function of its seeds.
    let again = serve_once();
    assert_eq!(again.outcome.metrics.render(), r.outcome.metrics.render());
    assert_eq!(again.report, r.report);
    for (x, y) in r.outcome.outcomes.iter().zip(&again.outcome.outcomes) {
        assert_eq!(
            fedlake_serve::sorted_csv(&x.vars, &x.rows),
            fedlake_serve::sorted_csv(&y.vars, &y.rows),
            "{}: chaotic serve reruns must agree",
            x.label
        );
        assert_eq!(x.stats, y.stats);
    }
}
