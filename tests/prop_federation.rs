//! Randomized federation tests: random lakes, random star queries, every
//! plan mode and network — federated answers must always equal the
//! lifted-graph oracle. Deterministically seeded via the in-repo PRNG.

use fedlake::core::{
    DataLake, DataSource, FederatedEngine, FilterPlacement, PlanConfig, PlanMode,
};
use fedlake::mapping::{DatasetMapping, IriTemplate, TableMapping};
use fedlake::netsim::NetworkProfile;
use fedlake::relational::{Database, Value};
use fedlake::sparql::eval::evaluate;
use fedlake::sparql::parser::parse_query;
use fedlake_prng::Prng;
use std::collections::BTreeSet;

const V: &str = "http://p/v/";

/// Random content for a two-table, one-source lake with an FK link.
#[derive(Debug, Clone)]
struct LakeSpec {
    genes: Vec<(u8, Option<u8>, Option<u8>)>, // (id, label idx, disease ref)
    diseases: Vec<(u8, Option<u8>)>,          // (id, name idx)
    fk_indexed: bool,
}

fn arb_lake(rng: &mut Prng) -> LakeSpec {
    let opt = |rng: &mut Prng, range: std::ops::Range<u8>| {
        rng.gen_bool(0.8).then(|| rng.gen_range(range))
    };
    let n_genes = rng.gen_range(0usize..30);
    let genes = (0..n_genes)
        .map(|_| (rng.gen_range(0u8..40), opt(rng, 0..6), opt(rng, 0..8)))
        .collect();
    let n_diseases = rng.gen_range(0usize..10);
    let diseases = (0..n_diseases)
        .map(|_| (rng.gen_range(0u8..8), opt(rng, 0..5)))
        .collect();
    LakeSpec { genes, diseases, fk_indexed: rng.gen_bool(0.5) }
}

fn build(spec: &LakeSpec) -> DataLake {
    let mut db = Database::new("src");
    db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, disease TEXT)")
        .unwrap();
    db.execute("CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT)").unwrap();
    let mut seen = BTreeSet::new();
    for (id, label, dref) in &spec.genes {
        if !seen.insert(*id) {
            continue;
        }
        db.insert_row(
            "gene",
            vec![
                Value::text(format!("g{id}")),
                label.map(|l| Value::text(format!("label-{l}"))).unwrap_or(Value::Null),
                dref.map(|d| Value::text(format!("d{d}"))).unwrap_or(Value::Null),
            ],
        )
        .unwrap();
    }
    let mut seen_d = BTreeSet::new();
    for (id, name) in &spec.diseases {
        if !seen_d.insert(*id) {
            continue;
        }
        db.insert_row(
            "disease",
            vec![
                Value::text(format!("d{id}")),
                name.map(|n| Value::text(format!("name-{n}"))).unwrap_or(Value::Null),
            ],
        )
        .unwrap();
    }
    if spec.fk_indexed {
        db.create_index("gene", "idx_fk", &["disease".to_string()], false).unwrap();
    }
    let mapping = DatasetMapping::new("src")
        .with_table(
            TableMapping::new("gene", format!("{V}Gene"), IriTemplate::new("http://p/gene/{}"), "id")
                .with_literal("label", &format!("{V}label"))
                .with_reference(
                    "disease",
                    &format!("{V}disease"),
                    IriTemplate::new("http://p/disease/{}"),
                ),
        )
        .with_table(
            TableMapping::new(
                "disease",
                format!("{V}Disease"),
                IriTemplate::new("http://p/disease/{}"),
                "id",
            )
            .with_literal("name", &format!("{V}name")),
        );
    let mut lake = DataLake::new();
    lake.add_source(DataSource::relational("src", db, mapping));
    lake
}

/// A small family of query shapes over the lake.
fn query_text(shape: u8, filter_val: u8) -> String {
    match shape % 7 {
        0 => format!("SELECT ?g ?l WHERE {{ ?g a <{V}Gene> . ?g <{V}label> ?l }}"),
        1 => format!(
            "SELECT ?g ?l ?n WHERE {{ ?g <{V}label> ?l . ?g <{V}disease> ?d . ?d <{V}name> ?n }}"
        ),
        2 => format!(
            "SELECT ?g WHERE {{ ?g <{V}label> ?l . FILTER(?l = \"label-{}\") }}",
            filter_val % 6
        ),
        3 => format!(
            "SELECT ?g ?n WHERE {{ ?g <{V}disease> ?d . ?d <{V}name> ?n . \
             FILTER(CONTAINS(?n, \"{}\")) }}",
            filter_val % 5
        ),
        4 => format!(
            "SELECT DISTINCT ?n WHERE {{ ?g <{V}disease> ?d . ?d <{V}name> ?n }}"
        ),
        5 => format!(
            "SELECT ?g ?n WHERE {{ ?g <{V}label> ?l . \
             OPTIONAL {{ ?g <{V}disease> ?d . ?d <{V}name> ?n }} }}"
        ),
        _ => format!(
            "SELECT ?g WHERE {{ {{ ?g <{V}label> \"label-{}\" }} UNION \
             {{ ?g <{V}label> \"label-{}\" }} }}",
            filter_val % 6,
            (filter_val + 1) % 6
        ),
    }
}

fn answers(rows: &[fedlake::sparql::Row]) -> BTreeSet<String> {
    rows.iter().map(|r| r.to_string()).collect()
}

/// The federation invariant: any plan mode, any network, any lake — the
/// answers equal the local evaluation over the lifted graph.
#[test]
fn federated_answers_equal_oracle() {
    let mut rng = Prng::seed_from_u64(0xfed0_0001);
    for _ in 0..64 {
        let spec = arb_lake(&mut rng);
        let shape = rng.gen_range(0u8..7);
        let filter_val = rng.gen_range(0u8..8);
        let mode_pick = rng.gen_range(0u8..5);
        let net_pick = rng.gen_range(0u8..4);
        let bind_join = rng.gen_bool(0.5);
        let batch = rng.gen_range(1usize..9);

        let lake = build(&spec);
        let sparql = query_text(shape, filter_val);
        let parsed = parse_query(&sparql).unwrap();
        let oracle = lake.oracle_graph();
        let expected = answers(&evaluate(&parsed, &oracle).unwrap());

        let mode = match mode_pick {
            0 => PlanMode::Unaware,
            1 => PlanMode::AWARE,
            2 => PlanMode::AWARE_H2,
            3 => PlanMode::Aware { h1_join_pushdown: false, filters: FilterPlacement::PushAll },
            _ => PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::Engine },
        };
        let network = NetworkProfile::ALL[net_pick as usize % 4];
        let mut cfg = PlanConfig::new(mode, network);
        if bind_join {
            cfg.engine_join = fedlake::core::EngineJoin::Bind { batch_size: batch };
        }
        let engine = FederatedEngine::new(lake, cfg);
        let result = engine.execute_sparql(&sparql).unwrap();
        assert_eq!(
            answers(&result.rows),
            expected,
            "shape {} mode {} network {}\nplan:\n{}",
            shape,
            mode.label(),
            network.name,
            result.explain
        );
    }
}

/// Execution-time monotonicity: a slower network never makes a plan
/// faster (same plan, same data, same seed).
#[test]
fn slower_network_never_speeds_up() {
    let mut rng = Prng::seed_from_u64(0xfed0_0002);
    for _ in 0..32 {
        let spec = arb_lake(&mut rng);
        let shape = rng.gen_range(0u8..5);
        let mode_pick = rng.gen_range(0u8..2);
        let lake = build(&spec);
        let sparql = query_text(shape, 1);
        let mode = if mode_pick == 0 { PlanMode::Unaware } else { PlanMode::AWARE };
        let time_at = |network| {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            engine.execute_sparql(&sparql).unwrap().stats.execution_time
        };
        // NoDelay injects zero network latency, so every delayed profile
        // must be at least as slow. (Two gamma profiles are NOT pairwise
        // comparable on few messages — a low Γ(3,1.5) draw can undercut a
        // Γ(1,0.3) draw — so only the zero baseline is asserted.)
        let baseline = time_at(NetworkProfile::NO_DELAY);
        for network in [NetworkProfile::GAMMA1, NetworkProfile::GAMMA2, NetworkProfile::GAMMA3] {
            let t = time_at(network);
            assert!(
                t >= baseline,
                "{} at {} took {t:?}, under the NoDelay baseline {baseline:?}",
                mode.label(),
                network.name
            );
        }
    }
}
