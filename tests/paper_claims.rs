//! The paper's §3 observations, asserted as integration tests over the
//! synthetic lake. These are the qualitative *shapes* the benchmark
//! harness regenerates quantitatively — who wins, roughly by how much,
//! and where the crossovers are.

use fedlake::core::{FederatedEngine, MergeTranslation, PlanConfig, PlanMode};
use fedlake::datagen::{build_lake_with, workload, LakeConfig};
use fedlake::netsim::NetworkProfile;
use std::time::Duration;

fn lake_cfg() -> LakeConfig {
    LakeConfig { scale: 0.25, ..Default::default() }
}

fn run(
    q: &workload::WorkloadQuery,
    mode: PlanMode,
    network: NetworkProfile,
    merge: MergeTranslation,
) -> (Duration, u64) {
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    let mut cfg = PlanConfig::new(mode, network);
    cfg.merge_translation = merge;
    // This suite pins the *heuristic* contrasts of the paper's §3; the
    // cost-based planner has its own suite (`cost_planner.rs`).
    cfg.cost_based = false;
    let engine = FederatedEngine::new(lake, cfg);
    let r = engine.execute_sparql(&q.sparql).unwrap();
    (r.stats.execution_time, r.stats.answers)
}

#[test]
fn aware_plans_win_or_tie_across_the_workload() {
    // §3: "the proposed heuristics have potential to improving the query
    // performance" — across Q1–Q5 and all four networks, the aware plan
    // must never lose badly, and must win overall.
    let mut aware_total = 0.0;
    let mut unaware_total = 0.0;
    for q in workload::experiment_queries() {
        for network in NetworkProfile::ALL {
            let (unaware, n1) =
                run(&q, PlanMode::Unaware, network, MergeTranslation::Optimized);
            let (aware, n2) = run(&q, PlanMode::AWARE, network, MergeTranslation::Optimized);
            assert_eq!(n1, n2, "{} answers differ under {}", q.id, network.name);
            aware_total += aware.as_secs_f64();
            unaware_total += unaware.as_secs_f64();
            assert!(
                aware.as_secs_f64() <= unaware.as_secs_f64() * 1.15,
                "{} under {}: aware {aware:?} much slower than unaware {unaware:?}",
                q.id,
                network.name
            );
        }
    }
    assert!(
        aware_total < unaware_total,
        "aware must win in aggregate: {aware_total:.4}s vs {unaware_total:.4}s"
    );
}

#[test]
fn q2_optimized_merge_roughly_halves_execution_time() {
    // §3: "Forcing Ontario to send the optimized SQL query for Q2 approx.
    // halves the execution time compared to the physical-design-unaware
    // QEP."
    let q2 = workload::q2();
    for network in [NetworkProfile::GAMMA1, NetworkProfile::GAMMA2, NetworkProfile::GAMMA3] {
        let (unaware, _) = run(&q2, PlanMode::Unaware, network, MergeTranslation::Optimized);
        let (merged, _) = run(&q2, PlanMode::AWARE, network, MergeTranslation::Optimized);
        let ratio = merged.as_secs_f64() / unaware.as_secs_f64();
        assert!(
            (0.2..=0.75).contains(&ratio),
            "under {}: merged/unaware = {ratio:.2} (expected ≈ 0.5)",
            network.name
        );
    }
}

#[test]
fn q2_naive_merge_translation_backfires() {
    // §3: "The translation of SPARQL queries into SQL queries is not
    // optimized for combining star-shaped sub-queries. This leads to an
    // increase in the query execution time if the join is pushed down."
    let q2 = workload::q2();
    for network in [NetworkProfile::GAMMA2, NetworkProfile::GAMMA3] {
        let (unaware, _) = run(&q2, PlanMode::Unaware, network, MergeTranslation::Optimized);
        let (naive, _) = run(&q2, PlanMode::AWARE, network, MergeTranslation::Naive);
        assert!(
            naive > unaware,
            "under {}: naive merge {naive:?} should exceed unaware {unaware:?}",
            network.name
        );
    }
}

#[test]
fn q3_aware_filter_pushdown_wins_at_every_network() {
    // Figure 2: "executing the filter at the relational database
    // (physical-design-aware QEP) is faster for this query", and "slow
    // networks have a higher impact on physical-design-unaware QEPs".
    let q3 = workload::q3();
    let mut prev_gap = 0.0;
    for network in NetworkProfile::ALL {
        let (unaware, _) = run(&q3, PlanMode::Unaware, network, MergeTranslation::Optimized);
        let (aware, _) = run(&q3, PlanMode::AWARE, network, MergeTranslation::Optimized);
        assert!(
            aware < unaware,
            "under {}: aware {aware:?} must beat unaware {unaware:?}",
            network.name
        );
        let gap = unaware.as_secs_f64() - aware.as_secs_f64();
        assert!(
            gap >= prev_gap * 0.8,
            "the absolute gap should widen with latency ({gap:.4}s after {prev_gap:.4}s)"
        );
        prev_gap = gap;
    }
}

#[test]
fn network_delay_impact_is_higher_for_unaware_plans() {
    // §3: "The analysis shows that the impact of network delays is higher
    // in the case of physical-design-unaware query execution plans."
    // Measured as the absolute slowdown NoDelay → Gamma3, summed over the
    // workload.
    let mut unaware_impact = 0.0;
    let mut aware_impact = 0.0;
    for q in workload::experiment_queries() {
        let (u0, _) = run(&q, PlanMode::Unaware, NetworkProfile::NO_DELAY, MergeTranslation::Optimized);
        let (u3, _) = run(&q, PlanMode::Unaware, NetworkProfile::GAMMA3, MergeTranslation::Optimized);
        let (a0, _) = run(&q, PlanMode::AWARE, NetworkProfile::NO_DELAY, MergeTranslation::Optimized);
        let (a3, _) = run(&q, PlanMode::AWARE, NetworkProfile::GAMMA3, MergeTranslation::Optimized);
        unaware_impact += (u3 - u0).as_secs_f64();
        aware_impact += (a3 - a0).as_secs_f64();
    }
    assert!(
        unaware_impact > aware_impact,
        "unaware slowdown {unaware_impact:.4}s must exceed aware slowdown {aware_impact:.4}s"
    );
}

#[test]
fn q1_engine_filtering_beats_rdb_filtering_on_fast_networks() {
    // §3: "the results of Q1 support our experience and suggest to follow
    // Heuristic 2" — on a fast network, evaluating the string filter at
    // the engine (H2's choice) beats pushing it to the RDB (where string
    // filtering is slower), despite the larger transfer.
    let q1 = workload::q1();
    let (engine_side, n1) = run(
        &q1,
        PlanMode::AWARE_H2, // fast net → engine placement
        NetworkProfile::NO_DELAY,
        MergeTranslation::Optimized,
    );
    let (pushed, n2) = run(
        &q1,
        PlanMode::AWARE, // push-indexed → RDB placement
        NetworkProfile::NO_DELAY,
        MergeTranslation::Optimized,
    );
    assert_eq!(n1, n2);
    assert!(
        engine_side < pushed,
        "fast net: engine filtering {engine_side:?} must beat RDB filtering {pushed:?}"
    );

    // …while on a slow network the pushed filter wins (the H2 trade-off),
    // because the unfiltered intermediate result no longer crosses the
    // link.
    let (engine_slow, _) = run(
        &q1,
        PlanMode::Aware {
            h1_join_pushdown: true,
            filters: fedlake::core::FilterPlacement::Engine,
        },
        NetworkProfile::GAMMA3,
        MergeTranslation::Optimized,
    );
    let (pushed_slow, _) = run(
        &q1,
        PlanMode::AWARE_H2, // slow net → pushes
        NetworkProfile::GAMMA3,
        MergeTranslation::Optimized,
    );
    assert!(
        pushed_slow < engine_slow,
        "slow net: pushed {pushed_slow:?} must beat engine {engine_slow:?}"
    );
}
