//! Fleet-level observability invariants: flight recorder passivity at
//! serve scale, deterministic recordings, the SLO watchdog's typed
//! anomalies, and the golden slow-query-log snapshot.
//!
//! The recorder mirrors the PR 4 tracing contract one level up: enabling
//! it must never change answers, per-session stats, the server rollup or
//! the summary report — it only *adds* the recording. The watchdog is a
//! pure fold over that recording, so the same run always yields the same
//! windows and anomalies; the three anomaly families are each provoked
//! deliberately here (a planted cardinality mis-estimate, a
//! chaos-degraded link, an admission queue under pressure).
//!
//! The slow-query log is pinned as a golden file under `tests/golden/`.
//! Regenerate deliberately with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test fleet_observability
//! ```

use fedlake_core::obs::AnomalyKind;
use fedlake_core::{
    watch, FaultPlan, FederatedEngine, PlanConfig, PlanMode, RetryPolicy, SlowLogConfig,
    WatchdogConfig,
};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_serve::{run, sorted_csv, Mix, ServeSpec};
use fedlake_sparql::parser::parse_query;
use std::path::PathBuf;
use std::time::Duration;

fn config(recorder: bool) -> PlanConfig {
    let mut c = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
    c.seed = 1;
    c.recorder = recorder;
    c
}

fn serve_lake(spec: &ServeSpec) -> fedlake_core::DataLake {
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    build_lake_with(&lake_cfg, &spec.mix.datasets())
}

/// The recorder must be invisible to everything it observes: a 32-client
/// run with it on reproduces the recorder-off run byte for byte —
/// workload instances, per-job answers, per-session stats, the metrics
/// rollup, the report JSON — and only differs by carrying a recording.
#[test]
fn recorder_is_passive_at_serve_scale() {
    let spec = ServeSpec {
        clients: 32,
        queries_per_client: 1,
        seed: 7,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 8,
        ..Default::default()
    };
    let lake = serve_lake(&spec);

    let off = run(&FederatedEngine::new(lake.clone(), config(false)), &spec).unwrap();
    let on = run(&FederatedEngine::new(lake, config(true)), &spec).unwrap();

    assert!(off.outcome.recording.is_none(), "recorder off must not record");
    let recording = on.outcome.recording.as_ref().expect("recorder on must record");
    assert_eq!(recording.jobs.len(), 32, "one job record per served query");
    assert!(recording.events.iter().any(|e| e.kind.name() == "complete"));

    assert_eq!(off.instances, on.instances, "workload instantiation diverged");
    assert_eq!(off.outcome.outcomes.len(), on.outcome.outcomes.len());
    for (x, y) in off.outcome.outcomes.iter().zip(&on.outcome.outcomes) {
        assert_eq!(x.label, y.label);
        assert_eq!(
            sorted_csv(&x.vars, &x.rows),
            sorted_csv(&y.vars, &y.rows),
            "{}: answers must be byte-identical recorder on/off",
            x.label
        );
        assert_eq!(x.stats, y.stats, "{}: per-session stats", x.label);
        assert_eq!(
            (x.arrival, x.admitted, x.finish, x.latency, x.first_answer),
            (y.arrival, y.admitted, y.finish, y.latency, y.first_answer),
            "{}: per-session timings",
            x.label
        );
    }
    assert_eq!(off.outcome.makespan, on.outcome.makespan);
    assert_eq!(
        off.outcome.metrics.render(),
        on.outcome.metrics.render(),
        "server rollup must be byte-identical recorder on/off"
    );
    assert_eq!(off.report.to_json(), on.report.to_json(), "report JSON");
}

/// The recording itself is deterministic: same seed, same lake, same
/// config — the event stream (times, sequence numbers, payloads), the
/// watchdog verdict, the slow-query log and both serve exports are
/// byte-identical across reruns.
#[test]
fn recordings_are_deterministic_across_reruns() {
    let spec = ServeSpec {
        clients: 8,
        queries_per_client: 2,
        seed: 21,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 4,
        ..Default::default()
    };
    let lake = serve_lake(&spec);
    let mut cfg = config(true);
    cfg.tracing = true;

    let a = run(&FederatedEngine::new(lake.clone(), cfg), &spec).unwrap();
    let b = run(&FederatedEngine::new(lake, cfg), &spec).unwrap();
    let (ra, rb) = (
        a.outcome.recording.as_ref().unwrap(),
        b.outcome.recording.as_ref().unwrap(),
    );
    assert_eq!(ra, rb, "recordings diverge across same-seed reruns");

    // Events are globally ordered by (time, seq) with seq strictly
    // increasing — the recorder's clock contract.
    let mut prev: Option<(Duration, u64)> = None;
    for e in &ra.events {
        if let Some((_, ps)) = prev {
            assert!(e.seq > ps, "seq must strictly increase");
        }
        prev = Some((e.time, e.seq));
    }

    let wd = WatchdogConfig::default();
    assert_eq!(a.watchdog(&wd).unwrap(), b.watchdog(&wd).unwrap());
    let slow = SlowLogConfig { latency: Some(Duration::ZERO), ..Default::default() };
    assert_eq!(
        fedlake_core::slow_log_json(&a.slow_queries(&slow)),
        fedlake_core::slow_log_json(&b.slow_queries(&slow)),
        "slow-query log diverges across reruns"
    );
    assert_eq!(
        fedlake_core::serve_chrome_trace(ra),
        fedlake_core::serve_chrome_trace(rb),
        "serve chrome trace diverges"
    );
    assert_eq!(
        fedlake_core::serve_timeline_html(ra),
        fedlake_core::serve_timeline_html(rb),
        "serve timeline diverges"
    );
}

/// A planted cardinality mis-estimate is caught as a typed anomaly: the
/// statistics catalog is scaled 1000× *after* collection (catalog drift),
/// the cost-based planner trusts the inflated estimates, and execution
/// falsifies them — the watchdog must flag the drifted source.
#[test]
fn watchdog_flags_a_planted_misestimate() {
    let q = workload::q1(); // single source: "chebi"
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    let mut cfg = config(true);
    cfg.cost_based = true;

    let mut engine = FederatedEngine::new(lake, cfg);
    engine
        .lake_mut()
        .statistics_mut()
        .source_mut("chebi")
        .expect("chebi statistics")
        .scale(1000);

    let ast = parse_query(&q.sparql).unwrap();
    let planned = engine.plan(&ast).unwrap();
    engine.execute_planned(&planned).unwrap();

    let recording = engine.flight_recording().expect("recorder on");
    let report = watch(&recording, &WatchdogConfig::default());
    let found: Vec<_> = report.of_kind("misestimate").collect();
    assert!(!found.is_empty(), "drifted catalog must raise a misestimate:\n{}", report.render());
    let AnomalyKind::Misestimate { source, qerror_x100, estimated_rows, actual_rows, .. } =
        &found[0].kind
    else {
        panic!("of_kind returned a different family");
    };
    assert_eq!(source, "chebi");
    assert!(
        *qerror_x100 >= 800,
        "a 1000x stats inflation must blow the 8x q-error threshold (got {qerror_x100})"
    );
    assert!(*estimated_rows > *actual_rows as f64, "estimate must overshoot");

    // Determinism: the same recording always produces the same verdict.
    assert_eq!(report, watch(&recording, &WatchdogConfig::default()));
}

/// A chaos-degraded link is caught as a typed anomaly: a targeted outage
/// on one source of a two-source federation produces faulted transfers
/// past the threshold on exactly that link, while the healthy source
/// stays unflagged.
#[test]
fn watchdog_flags_a_chaos_degraded_link() {
    let q = workload::q3(); // two sources: "linkedct" + "diseasome"
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, q.datasets);
    let mut cfg = config(true);
    cfg.retry = RetryPolicy { max_attempts: 6, ..Default::default() };

    let mut engine = FederatedEngine::new(lake, cfg);
    engine.set_source_faults(
        "diseasome",
        FaultPlan { outage_after: Some(0), outage_len: 3, ..FaultPlan::NONE },
    );
    engine.execute_sparql(&q.sparql).unwrap();

    let recording = engine.flight_recording().expect("recorder on");
    let faulted = recording
        .events
        .iter()
        .filter(|e| matches!(e.kind, fedlake_core::obs::FleetEventKind::Transfer { faulted: true, .. }))
        .count();
    assert_eq!(faulted, 3, "the outage must surface as three faulted transfers");

    let report = watch(&recording, &WatchdogConfig::default());
    let flagged: Vec<_> = report.of_kind("link-degraded").collect();
    assert_eq!(flagged.len(), 1, "exactly the outaged link is flagged:\n{}", report.render());
    let AnomalyKind::LinkDegraded { source, faulted, .. } = &flagged[0].kind else {
        panic!("of_kind returned a different family");
    };
    assert_eq!(source, "diseasome");
    assert_eq!(*faulted, 3);
}

/// Admission pressure is caught as a typed anomaly: a closed batch of
/// eight clients against a single admission slot queues everyone behind
/// the head job, breaching any small wait threshold.
#[test]
fn watchdog_flags_admission_pressure() {
    let spec = ServeSpec {
        clients: 8,
        queries_per_client: 1,
        seed: 7,
        mean_interarrival: Duration::ZERO,
        max_in_flight: 1,
        ..Default::default()
    };
    let lake = serve_lake(&spec);
    let r = run(&FederatedEngine::new(lake, config(true)), &spec).unwrap();

    let wd = WatchdogConfig {
        queue_wait: Duration::from_micros(1),
        queue_breach_threshold: 3,
        ..Default::default()
    };
    let report = r.watchdog(&wd).expect("recorder on");
    let pressure: Vec<_> = report.of_kind("admission-pressure").collect();
    assert!(!pressure.is_empty(), "serialized admission must breach:\n{}", report.render());
    let AnomalyKind::AdmissionPressure { breaches, max_queued_us } = &pressure[0].kind else {
        panic!("of_kind returned a different family");
    };
    assert!(*breaches >= 3, "seven queued jobs must breach at least thrice");
    assert!(*max_queued_us >= 1);
}

/// The slow-query log of a fixed-seed serve run is pinned as a golden
/// JSON snapshot: any change to the recorder's event stream, the breach
/// logic, the trace enrichment or the JSON shape shows up as a readable
/// diff. A zero latency threshold makes every completed query "slow", so
/// the snapshot covers the full record shape.
#[test]
fn slow_query_log_matches_golden_snapshot() {
    let spec = ServeSpec {
        clients: 4,
        queries_per_client: 1,
        seed: 7,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 4,
        ..Default::default()
    };
    let lake = serve_lake(&spec);
    let mut cfg = config(true);
    cfg.tracing = true; // per-operator / per-link enrichment
    // The snapshot pins the *heuristic* plan shape; FEDLAKE_COST=1 must
    // not silently swap in cost-ordered plans with different operators.
    cfg.cost_based = false;
    let r = run(&FederatedEngine::new(lake, cfg), &spec).unwrap();

    let slow = SlowLogConfig { latency: Some(Duration::ZERO), ..Default::default() };
    let records = r.slow_queries(&slow);
    assert_eq!(records.len(), 4, "zero threshold must capture every job");
    for rec in &records {
        assert!(rec.breached.contains(&"latency".to_string()));
        assert!(!rec.operators.is_empty(), "{}: trace enrichment missing", rec.label);
        // Serve links are shared across sessions, so per-query link rows
        // stay empty here — link health at serve scale is the watchdog's
        // job (fleet `transfer` events), not the slow-query record's.
        assert!(!rec.sources.is_empty(), "{}: per-service rows missing", rec.label);
    }
    let json = fedlake_core::slow_log_json(&records);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/slow_query.json");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {path:?} ({e}); bless with BLESS_GOLDEN=1")
    });
    assert_eq!(json, want, "slow-query log diverges from {path:?}");
}

/// The `Mix` used above must include multi-source templates so the serve
/// recordings exercise joins, failable links and per-source rows — guard
/// against the default mix silently narrowing.
#[test]
fn default_mix_spans_multiple_sources() {
    assert!(Mix::default().datasets().len() >= 2);
}
