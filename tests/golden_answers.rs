//! Golden-snapshot answers for the experiment workload.
//!
//! The fault-free answers of Q1–Q5 (lake scale 0.1, sorted SPARQL 1.1 CSV
//! via `to_sparql_csv`) are pinned as files under `tests/golden/`. Any
//! change to the parser, decomposer, planner, wrappers, join operators or
//! data generator that alters an answer set shows up as a readable CSV
//! diff. Regenerate deliberately with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_answers
//! ```

use fedlake_core::{FedResult, FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use std::path::PathBuf;

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.csv", id.to_lowercase()))
}

fn sorted_csv(r: &FedResult) -> String {
    let mut rows = r.rows.clone();
    rows.sort_by_cached_key(|row| row.to_string());
    fedlake_core::results::to_sparql_csv(&r.vars, &rows)
}

fn run(q: &workload::WorkloadQuery, mode: PlanMode) -> FedResult {
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q.datasets);
    let engine = FederatedEngine::new(lake, PlanConfig::new(mode, NetworkProfile::NO_DELAY));
    engine.execute_sparql(&q.sparql).unwrap()
}

#[test]
fn workload_answers_match_golden_snapshots() {
    let bless = std::env::var_os("BLESS_GOLDEN").is_some();
    for q in workload::experiment_queries() {
        let csv = sorted_csv(&run(&q, PlanMode::AWARE));
        let path = golden_path(q.id);
        if bless {
            std::fs::write(&path, &csv).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden snapshot {path:?} ({e}); bless with BLESS_GOLDEN=1")
        });
        assert_eq!(csv, want, "{}: answers diverge from {path:?}", q.id);
    }
}

/// The snapshots are plan-invariant: the unaware plan must produce the
/// same answer sets the aware plan was blessed with.
#[test]
fn unaware_plan_matches_golden_snapshots() {
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        return; // snapshots are being rewritten by the blessing run
    }
    for q in workload::experiment_queries() {
        let csv = sorted_csv(&run(&q, PlanMode::Unaware));
        let want = std::fs::read_to_string(golden_path(q.id)).unwrap();
        assert_eq!(csv, want, "{}: unaware plan diverges from snapshot", q.id);
    }
}
