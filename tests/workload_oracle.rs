//! Cross-crate integration: the full synthetic LSLOD-like lake, the whole
//! experiment workload (QM, Q1–Q5), every plan mode — all answers checked
//! against the lifted-graph oracle.

use fedlake::core::{
    DecompositionStrategy, FederatedEngine, FilterPlacement, PlanConfig, PlanMode,
};
use fedlake::datagen::{build_lake_with, workload, LakeConfig};
use fedlake::netsim::NetworkProfile;
use fedlake::sparql::eval::evaluate;
use fedlake::sparql::parser::parse_query;
use std::collections::BTreeSet;

fn small_config() -> LakeConfig {
    LakeConfig { scale: 0.15, ..Default::default() }
}

fn answer_set(rows: &[fedlake::sparql::Row]) -> BTreeSet<String> {
    rows.iter().map(|r| r.to_string()).collect()
}

#[test]
fn every_workload_query_matches_the_oracle_in_every_mode() {
    let cfg = small_config();
    let modes = [
        PlanMode::Unaware,
        PlanMode::AWARE,
        PlanMode::AWARE_H2,
        PlanMode::Aware { h1_join_pushdown: false, filters: FilterPlacement::PushIndexed },
        PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::PushAll },
    ];
    for q in workload::all() {
        let lake = build_lake_with(&cfg, q.datasets);
        let oracle = lake.oracle_graph();
        let parsed = parse_query(&q.sparql).unwrap();
        let expected = answer_set(&evaluate(&parsed, &oracle).unwrap());
        assert!(
            !expected.is_empty(),
            "{} must have answers at scale {}",
            q.id,
            cfg.scale
        );
        for mode in modes {
            for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA3] {
                let engine =
                    FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
                let result = engine.execute_sparql(&q.sparql).unwrap_or_else(|e| {
                    panic!("{} failed under {} / {}: {e}", q.id, mode.label(), network.name)
                });
                assert_eq!(
                    answer_set(&result.rows),
                    expected,
                    "{} answers diverge under {} / {}\nplan:\n{}",
                    q.id,
                    mode.label(),
                    network.name,
                    result.explain
                );
            }
        }
    }
}

#[test]
fn q2_is_merged_by_h1_and_q3_pushes_its_filter() {
    let cfg = small_config();

    // Q2: both stars live at diseasome and the FK is indexed → merged.
    let q2 = workload::q2();
    let lake = build_lake_with(&cfg, q2.datasets);
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::NO_DELAY));
    let r = engine.execute_sparql(&q2.sparql).unwrap();
    assert_eq!(r.stats.merged_services, 1, "{}", r.explain);
    assert_eq!(r.stats.services, 1, "{}", r.explain);
    assert!(r.explain.contains("JOIN"), "{}", r.explain);

    // Q3: category is indexed → the aware plan pushes the equality filter.
    let q3 = workload::q3();
    let lake = build_lake_with(&cfg, q3.datasets);
    let engine =
        FederatedEngine::new(lake.clone(), PlanConfig::aware(NetworkProfile::NO_DELAY));
    let r = engine.execute_sparql(&q3.sparql).unwrap();
    assert!(r.explain.contains("category = 'cat-7'"), "{}", r.explain);
    // And the unaware plan does not.
    let engine = FederatedEngine::new(lake, PlanConfig::unaware(NetworkProfile::NO_DELAY));
    let r = engine.execute_sparql(&q3.sparql).unwrap();
    assert!(!r.explain.contains("category = 'cat-7'"), "{}", r.explain);
    assert!(r.stats.engine_filter_evals > 0);
}

#[test]
fn qm_shape_matches_figure_1() {
    // Figure 1c: the aware plan pushes the Diseasome join down and keeps
    // the (unindexable) species filter at the engine; Figure 1b evaluates
    // everything engine-side.
    let cfg = small_config();
    let qm = workload::motivating();
    let lake = build_lake_with(&cfg, qm.datasets);

    let aware = FederatedEngine::new(lake.clone(), PlanConfig::aware(NetworkProfile::GAMMA3))
        .execute_sparql(&qm.sparql)
        .unwrap();
    // Gene⋈Disease merged at diseasome; probeset service separate.
    assert_eq!(aware.stats.merged_services, 1, "{}", aware.explain);
    assert_eq!(aware.stats.services, 2, "{}", aware.explain);
    // The species filter is NOT pushed (no index under the 15 % rule) even
    // though the network is slow and the mode is aware.
    assert!(aware.stats.engine_filter_evals > 0, "{}", aware.explain);
    assert!(!aware.explain.to_lowercase().contains("sapiens%'"), "{}", aware.explain);

    let unaware =
        FederatedEngine::new(lake, PlanConfig::unaware(NetworkProfile::GAMMA3))
            .execute_sparql(&qm.sparql)
            .unwrap();
    assert_eq!(unaware.stats.merged_services, 0);
    assert_eq!(unaware.stats.services, 3);
    // The aware plan needs fewer engine-level operators — Figure 1's point.
    assert!(
        aware.stats.engine_operators < unaware.stats.engine_operators,
        "aware {} vs unaware {}",
        aware.stats.engine_operators,
        unaware.stats.engine_operators
    );
}

#[test]
fn full_ten_dataset_lake_answers_cross_source_chains() {
    // A query spanning three datasets end-to-end on the full lake:
    // prescriptions → drugs → targets → genes → diseases.
    let cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let lake = fedlake::datagen::build_lake(&cfg);
    let v = "http://lake.example/vocab/";
    let sparql = format!(
        "SELECT ?dn ?gl WHERE {{\n\
           ?dt a <{v}drugbank/Target> .\n\
           ?dt <{v}drugbank/drug> ?dr .\n\
           ?dt <{v}drugbank/gene> ?g .\n\
           ?dr <{v}drugbank/name> ?dn .\n\
           ?g <{v}diseasome/label> ?gl .\n\
         }}"
    );
    let oracle = lake.oracle_graph();
    let parsed = parse_query(&sparql).unwrap();
    let expected = answer_set(&evaluate(&parsed, &oracle).unwrap());
    assert!(!expected.is_empty());
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        let engine =
            FederatedEngine::new(lake.clone(), PlanConfig::new(mode, NetworkProfile::GAMMA1));
        let result = engine.execute_sparql(&sparql).unwrap();
        assert_eq!(answer_set(&result.rows), expected, "mode {}", mode.label());
    }
}

#[test]
fn triple_based_decomposition_agrees_and_costs_more() {
    // §5 future work: triple-based instead of star-shaped sub-queries.
    // Same answers, more services, more engine joins, slower execution.
    let cfg = small_config();
    for q in workload::all() {
        let lake = build_lake_with(&cfg, q.datasets);
        let oracle = lake.oracle_graph();
        let parsed = parse_query(&q.sparql).unwrap();
        let expected = answer_set(&evaluate(&parsed, &oracle).unwrap());

        let mut star_cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
        star_cfg.decomposition = DecompositionStrategy::StarShaped;
        let mut triple_cfg = star_cfg;
        triple_cfg.decomposition = DecompositionStrategy::TripleBased;

        let star = FederatedEngine::new(lake.clone(), star_cfg)
            .execute_sparql(&q.sparql)
            .unwrap();
        let triple = FederatedEngine::new(lake, triple_cfg)
            .execute_sparql(&q.sparql)
            .unwrap();
        assert_eq!(answer_set(&star.rows), expected, "{} star answers", q.id);
        assert_eq!(
            answer_set(&triple.rows),
            expected,
            "{} triple-based answers\nplan:\n{}",
            q.id,
            triple.explain
        );
        assert!(
            triple.stats.services >= star.stats.services,
            "{}: triple-based must not need fewer services",
            q.id
        );
        assert!(
            triple.stats.execution_time >= star.stats.execution_time,
            "{}: triple-based {:?} should not beat star-shaped {:?}",
            q.id,
            triple.stats.execution_time,
            star.stats.execution_time
        );
    }
}

#[test]
fn denormalized_diseasome_agrees_and_merges_without_join() {
    // §5 future work: "not normalized tables". The denormalized lake holds
    // identical logical content, so answers must match the 3NF lake; the
    // gene–disease pair then merges into a single-table SELECT (no JOIN).
    let cfg = small_config();
    let denorm_cfg = LakeConfig { denormalized: vec!["diseasome".into()], ..cfg.clone() };
    for q in [workload::motivating(), workload::q5()] {
        let lake_3nf = build_lake_with(&cfg, q.datasets);
        let lake_denorm = build_lake_with(&denorm_cfg, q.datasets);
        let expected = answer_set(
            &FederatedEngine::new(lake_3nf, PlanConfig::aware(NetworkProfile::NO_DELAY))
                .execute_sparql(&q.sparql)
                .unwrap()
                .rows,
        );
        let r = FederatedEngine::new(
            lake_denorm.clone(),
            PlanConfig::aware(NetworkProfile::NO_DELAY),
        )
        .execute_sparql(&q.sparql)
        .unwrap();
        assert_eq!(answer_set(&r.rows), expected, "{} denormalized answers\n{}", q.id, r.explain);
        assert_eq!(r.stats.merged_services, 1, "{}", r.explain);
        // The merged service reads ONE table with no join.
        assert!(!r.explain.contains("JOIN"), "{}", r.explain);
        assert!(r.explain.contains("gene_disease"), "{}", r.explain);

        // The denormalized source also agrees with its own oracle.
        let oracle = lake_denorm.oracle_graph();
        let parsed = parse_query(&q.sparql).unwrap();
        assert_eq!(
            answer_set(&evaluate(&parsed, &oracle).unwrap()),
            expected,
            "{} lifted-denormalized oracle",
            q.id
        );
    }
}

#[test]
fn lake_with_native_rdf_member_answers_workload() {
    // Mount diseasome as a native RDF source: QM then spans a relational
    // source (affymetrix) and an RDF one (diseasome) — the heterogeneous
    // lake of §2.1. H1 cannot merge into an RDF source; answers must not
    // change.
    let qm = workload::motivating();
    let mut cfg = small_config();
    let relational_lake = build_lake_with(&cfg, qm.datasets);
    cfg.rdf_sources = vec!["diseasome".into()];
    let mixed_lake = build_lake_with(&cfg, qm.datasets);

    let expected = {
        let engine = FederatedEngine::new(
            relational_lake,
            PlanConfig::aware(NetworkProfile::NO_DELAY),
        );
        answer_set(&engine.execute_sparql(&qm.sparql).unwrap().rows)
    };
    let engine =
        FederatedEngine::new(mixed_lake, PlanConfig::aware(NetworkProfile::NO_DELAY));
    let result = engine.execute_sparql(&qm.sparql).unwrap();
    assert_eq!(answer_set(&result.rows), expected);
    assert_eq!(result.stats.merged_services, 0, "{}", result.explain);
}
