//! Contention properties of the serving layer.
//!
//! K clients share one wrapper link under a **constant** delay model, so
//! every bound is exact: the shared link serializes all transfers on its
//! occupancy timeline, which gives
//!
//! * aggregate makespan ≥ the sum of each query's solo network delay
//!   (the link can only carry one message at a time), and
//! * every query's served latency ≥ its solo latency (queueing and the
//!   single-threaded engine core only ever delay a session's events).
//!
//! A gamma profile would break the per-query bound spuriously — shared
//! links interleave the RNG draws, so one session can draw *luckier*
//! delays than it would solo. Constant delays make the bounds
//! schedule-independent.
//!
//! Also pinned here: a deadline-exceeded session reports
//! [`FedError::Timeout`] in its own outcome without poisoning the other
//! sessions, and admission control never exceeds the in-flight bound
//! (asserted through the `serve.in_flight` gauge of the obs rollup).

use fedlake_core::obs::Metric;
use fedlake_core::serve::{ServeConfig, ServeJob};
use fedlake_core::{FedError, FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::{DelayModel, NetworkProfile};
use fedlake_serve::sorted_csv;
use fedlake_sparql::parser::parse_query;
use std::time::Duration;

const CONST2: NetworkProfile =
    NetworkProfile { name: "const2", delay: DelayModel::Constant { ms: 2.0 } };

fn config() -> PlanConfig {
    let mut c = PlanConfig::new(PlanMode::AWARE, CONST2);
    c.seed = 5;
    c.overlap = true;
    c
}

/// K identical Q1 jobs over the single-source ChEBI lake: one shared
/// link, all arrivals at t = 0.
fn q1_jobs(engine: &FederatedEngine, k: usize) -> Vec<ServeJob> {
    let q = workload::q1();
    let ast = parse_query(&q.sparql).unwrap();
    let planned = engine.plan(&ast).unwrap();
    (0..k)
        .map(|client| ServeJob {
            client,
            label: format!("{}#{client}", q.id),
            planned: planned.clone(),
            deadline: None,
            cached: false,
        })
        .collect()
}

#[test]
fn shared_link_bounds_hold() {
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, workload::q1().datasets);
    let solo = FederatedEngine::new(lake.clone(), config())
        .execute_sparql(&workload::q1().sparql)
        .unwrap();

    const K: usize = 4;
    let engine = FederatedEngine::new(lake.clone(), config());
    let jobs = q1_jobs(&engine, K);
    let outcome = engine
        .serve(
            &jobs,
            &ServeConfig {
                seed: 9,
                max_in_flight: 0, // unbounded: all K contend at once
                mean_interarrival: Duration::ZERO,
                deadline: None,
            },
        )
        .unwrap();

    // The shared link serializes: the run cannot finish before it has
    // carried K queries' worth of constant-delay messages.
    let solo_sum = solo.stats.network_delay * K as u32;
    assert!(
        outcome.makespan >= solo_sum,
        "makespan {:?} < serialized link lower bound {:?}",
        outcome.makespan,
        solo_sum
    );

    for out in &outcome.outcomes {
        assert!(out.error.is_none(), "{}: {:?}", out.label, out.error);
        // Contention only ever delays a session.
        assert!(
            out.latency >= solo.stats.execution_time,
            "{}: served latency {:?} < solo latency {:?}",
            out.label,
            out.latency,
            solo.stats.execution_time
        );
        // …and never changes what it answers.
        assert_eq!(
            sorted_csv(&out.vars, &out.rows),
            sorted_csv(&solo.vars, &solo.rows),
            "{}: contention must not change the answer set",
            out.label
        );
    }

    // Sanity: with one client there is no contention, so the bound is
    // tight — the served latency equals the solo latency exactly.
    let engine1 = FederatedEngine::new(lake.clone(), config());
    let jobs1 = q1_jobs(&engine1, 1);
    let solo_outcome = engine1
        .serve(
            &jobs1,
            &ServeConfig {
                seed: 9,
                max_in_flight: 0,
                mean_interarrival: Duration::ZERO,
                deadline: None,
            },
        )
        .unwrap();
    assert_eq!(
        solo_outcome.outcomes[0].latency, solo.stats.execution_time,
        "a lone served query must match its solo execution time exactly"
    );
}

#[test]
fn deadline_timeout_does_not_poison_other_sessions() {
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, workload::q1().datasets);
    let solo = FederatedEngine::new(lake.clone(), config())
        .execute_sparql(&workload::q1().sparql)
        .unwrap();

    let engine = FederatedEngine::new(lake.clone(), config());
    let mut jobs = q1_jobs(&engine, 3);
    // The middle client's deadline is far below one 2 ms message delay:
    // it must time out before its first answer.
    jobs[1].deadline = Some(Duration::from_micros(100));
    let outcome = engine
        .serve(
            &jobs,
            &ServeConfig {
                seed: 9,
                max_in_flight: 0,
                mean_interarrival: Duration::ZERO,
                deadline: None,
            },
        )
        .unwrap();

    match &outcome.outcomes[1].error {
        Some(FedError::Timeout(d)) => assert_eq!(*d, Duration::from_micros(100)),
        other => panic!("deadline session must report FedError::Timeout, got {other:?}"),
    }
    assert!(outcome.outcomes[1].rows.is_empty());
    for out in [&outcome.outcomes[0], &outcome.outcomes[2]] {
        assert!(out.error.is_none(), "{}: {:?}", out.label, out.error);
        assert_eq!(
            sorted_csv(&out.vars, &out.rows),
            sorted_csv(&solo.vars, &solo.rows),
            "{}: a neighbour's timeout must not change this session's answers",
            out.label
        );
    }
    assert_eq!(outcome.metrics.counter("serve.timeouts"), 1);
    assert_eq!(outcome.metrics.counter("serve.completed"), 2);
}

#[test]
fn admission_control_never_exceeds_the_bound() {
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, workload::q1().datasets);

    const K: usize = 6;
    const BOUND: usize = 2;
    let engine = FederatedEngine::new(lake.clone(), config());
    let jobs = q1_jobs(&engine, K);
    let outcome = engine
        .serve(
            &jobs,
            &ServeConfig {
                seed: 9,
                max_in_flight: BOUND,
                mean_interarrival: Duration::ZERO,
                deadline: None,
            },
        )
        .unwrap();

    assert_eq!(outcome.metrics.counter("serve.admitted"), K as u64);
    assert_eq!(outcome.metrics.counter("serve.completed"), K as u64);
    match outcome.metrics.get("serve.in_flight") {
        Some(Metric::Gauge { max, .. }) => assert!(
            max <= BOUND as u64,
            "in-flight gauge max {max} exceeded the admission bound {BOUND}"
        ),
        other => panic!("serve.in_flight gauge missing: {other:?}"),
    }
    // Queued jobs were admitted strictly after the first wave.
    let mut admissions: Vec<Duration> = outcome.outcomes.iter().map(|o| o.admitted).collect();
    admissions.sort();
    assert_eq!(admissions[0], Duration::ZERO);
    assert!(
        admissions[BOUND] > Duration::ZERO,
        "job {BOUND} must have waited for an admission slot"
    );
}
