//! The statistics-driven cost-based planner, end to end: catalog
//! determinism and invalidation, estimator properties over the real
//! workload lake, DP and greedy strategy selection, answer equivalence
//! against the heuristic plans, and the EXPLAIN ANALYZE estimated-vs-
//! actual row reporting.

use fedlake::core::{
    DataLake, DataSource, FedResult, FederatedEngine, PlanConfig, PlanMode,
};
use fedlake::datagen::{build_lake_with, workload, LakeConfig};
use fedlake::netsim::NetworkProfile;
use fedlake::rdf::{Graph, Term};
use fedlake::sparql::parser::parse_query;
use fedlake_core::planner::{PlanStrategy, DP_UNIT_LIMIT};

fn sorted_rows(r: &FedResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows.iter().map(|row| row.to_string()).collect();
    v.sort();
    v
}

fn lake_cfg() -> LakeConfig {
    LakeConfig { scale: 0.15, ..Default::default() }
}

fn cost_config(network: NetworkProfile) -> PlanConfig {
    let mut cfg = PlanConfig::new(PlanMode::AWARE, network);
    cfg.cost_based = true;
    cfg
}

// --- the statistics catalog ------------------------------------------------

#[test]
fn statistics_collection_is_deterministic() {
    let q = workload::q5();
    let a = build_lake_with(&lake_cfg(), q.datasets);
    let b = build_lake_with(&lake_cfg(), q.datasets);
    for source in a.sources() {
        let sa = a.source_stats(source.id()).expect("stats collected at registration");
        let sb = b.source_stats(source.id()).expect("stats collected at registration");
        assert_eq!(sa, sb, "{}: statistics differ across identical builds", source.id());
        assert!(sa.triples > 0, "{}: empty statistics", source.id());
    }
}

#[test]
fn statistics_are_invalidated_on_source_mutation() {
    let mut lake = DataLake::new();
    let mut g = Graph::new();
    g.insert_terms(
        Term::iri("http://d/x1"),
        Term::iri(fedlake::rdf::vocab::rdf::TYPE),
        Term::iri("http://v/Thing"),
    );
    lake.add_source(DataSource::sparql("things", g));
    let before = lake.source_stats("things").unwrap().clone();
    assert_eq!(before.triples, 1);

    // Mutate the source in place, then refresh — the invalidation point.
    if let Some(DataSource::Sparql { graph, .. }) = lake.source_mut("things") {
        graph.insert_terms(
            Term::iri("http://d/x2"),
            Term::iri(fedlake::rdf::vocab::rdf::TYPE),
            Term::iri("http://v/Thing"),
        );
    } else {
        panic!("source vanished");
    }
    assert_eq!(
        lake.source_stats("things").unwrap(),
        &before,
        "stats must stay stale until refresh_templates runs"
    );
    lake.refresh_templates();
    let after = lake.source_stats("things").unwrap();
    assert_eq!(after.triples, 2, "refresh must recollect the mutated source");
    assert_ne!(after, &before);
}

// --- estimator properties over the real lake -------------------------------

#[test]
fn star_estimates_bound_actual_cardinalities_within_source_size() {
    // For every source of the Q5 lake, the estimate of any predicate
    // subset's star is positive and never exceeds the source's triple
    // count (a star yields at most one row per covered subject, and
    // multiplicities only widen up to the triple count).
    let q = workload::q5();
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    for source in lake.sources() {
        let stats = lake.source_stats(source.id()).unwrap();
        assert!(stats.subjects <= stats.triples + 1);
        let mut preds: Vec<&str> = stats.predicates.keys().map(String::as_str).collect();
        preds.sort_unstable();
        // Covering-subject counts must shrink (or hold) as the predicate
        // set grows: monotonicity of characteristic-set containment.
        let mut prev = stats.star_subjects(&[]);
        let mut chosen: Vec<&str> = Vec::new();
        for p in preds.iter().take(4) {
            chosen.push(p);
            let now = stats.star_subjects(&chosen);
            assert!(
                now <= prev,
                "{}: star_subjects grew when adding {p} ({now} > {prev})",
                source.id()
            );
            prev = now;
        }
    }
}

#[test]
fn cost_estimates_populate_the_plan_report() {
    let q = workload::q3();
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    let ast = parse_query(&q.sparql).unwrap();
    let engine = FederatedEngine::new(lake, cost_config(NetworkProfile::GAMMA2));
    let planned = engine.plan(&ast).unwrap();
    let report = &planned.report;
    assert!(report.cost_based);
    assert_eq!(report.strategy, PlanStrategy::Dp, "Q3 has few units: DP applies");
    assert!(report.plans_costed > 0, "the DP must have priced candidate plans");
    assert!(report.estimated_rows >= 1.0);
    let cost = report.estimated_cost.expect("cost mode must report the chosen cost");
    assert!(cost.total_us() > 0.0, "{cost:?}");
    assert!(cost.network_us > 0.0, "a federated plan always pays the network");
}

#[test]
fn heuristic_mode_reports_heuristic_strategy() {
    let q = workload::q3();
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    let ast = parse_query(&q.sparql).unwrap();
    let mut cfg = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA2);
    cfg.cost_based = false;
    let planned = FederatedEngine::new(lake, cfg).plan(&ast).unwrap();
    assert!(!planned.report.cost_based);
    assert_eq!(planned.report.strategy, PlanStrategy::Heuristic);
    assert_eq!(planned.report.plans_costed, 0);
    assert!(planned.report.estimated_cost.is_none());
}

// --- strategy selection ----------------------------------------------------

/// A chain query of more stars than `DP_UNIT_LIMIT`, all on one SPARQL
/// source (SPARQL stars are never merged, so each star is one ordering
/// unit): the planner must take the greedy cost-based path and still
/// return the right answers.
#[test]
fn many_star_chains_fall_back_to_greedy_ordering() {
    let n = DP_UNIT_LIMIT + 2;
    let mut g = Graph::new();
    for level in 0..n {
        for item in 0..3u32 {
            let subject = format!("http://d/n{level}_{item}");
            g.insert_terms(
                Term::iri(&subject),
                Term::iri(fedlake::rdf::vocab::rdf::TYPE),
                Term::iri(format!("http://v/C{level}")),
            );
            if level + 1 < n {
                g.insert_terms(
                    Term::iri(&subject),
                    Term::iri(format!("http://v/next{level}")),
                    Term::iri(format!("http://d/n{}_{item}", level + 1)),
                );
            }
        }
    }
    let mut lake = DataLake::new();
    lake.add_source(DataSource::sparql("chain", g));

    let mut pattern = String::new();
    for level in 0..n {
        pattern.push_str(&format!("?x{level} a <http://v/C{level}> .\n"));
        if level + 1 < n {
            pattern.push_str(&format!(
                "?x{level} <http://v/next{level}> ?x{} .\n",
                level + 1
            ));
        }
    }
    let sparql = format!("SELECT ?x0 ?x{} WHERE {{ {pattern} }}", n - 1);
    let ast = parse_query(&sparql).unwrap();

    let engine = FederatedEngine::new(lake.clone(), cost_config(NetworkProfile::GAMMA1));
    let planned = engine.plan(&ast).unwrap();
    assert_eq!(
        planned.report.strategy,
        PlanStrategy::GreedyCost,
        "{n} units exceed DP_UNIT_LIMIT={DP_UNIT_LIMIT}"
    );
    assert!(planned.report.plans_costed > 0);
    let cost = engine.execute_planned(&planned).unwrap();
    assert_eq!(cost.rows.len(), 3, "three chains survive end to end");

    let mut heur_cfg = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
    heur_cfg.cost_based = false;
    let heur = FederatedEngine::new(lake, heur_cfg).execute_sparql(&sparql).unwrap();
    assert_eq!(sorted_rows(&heur), sorted_rows(&cost));
}

// --- answer equivalence and the bench claim --------------------------------

#[test]
fn cost_based_plans_answer_identically_across_workload_and_schedules() {
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg(), q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let cfg = cost_config(network);
            let mut ovl_cfg = cfg;
            ovl_cfg.overlap = true;
            let mut heur_cfg = cfg;
            heur_cfg.cost_based = false;

            let engine = FederatedEngine::new(lake.clone(), cfg);
            let planned = engine.plan(&ast).unwrap();
            let ser = engine.execute_planned(&planned).unwrap();
            let ovl = FederatedEngine::new(lake.clone(), ovl_cfg)
                .execute_planned(&planned)
                .unwrap();
            let heur = FederatedEngine::new(lake.clone(), heur_cfg)
                .execute_sparql(&q.sparql)
                .unwrap();

            let label = format!("{}/{}", q.id, network.name);
            assert!(ser.stats.answers > 0, "{label}: no answers");
            assert_eq!(
                sorted_rows(&ser),
                sorted_rows(&ovl),
                "{label}: schedules diverge under cost planning"
            );
            assert_eq!(
                sorted_rows(&ser),
                sorted_rows(&heur),
                "{label}: cost-based answers diverge from heuristic answers"
            );
        }
    }
}

#[test]
fn cost_based_beats_heuristics_on_cross_source_joins_under_delay() {
    // The acceptance shape of the bench section, pinned as a test: on at
    // least two of Q3–Q5 under each slow profile, the cost-based plan is
    // strictly faster with byte-identical answers.
    for network in [NetworkProfile::GAMMA2, NetworkProfile::GAMMA3] {
        let mut wins = 0;
        for q in [workload::q3(), workload::q4(), workload::q5()] {
            let lake = build_lake_with(&lake_cfg(), q.datasets);
            let mut heur_cfg = PlanConfig::new(PlanMode::AWARE, network);
            heur_cfg.cost_based = false;
            let heur = FederatedEngine::new(lake.clone(), heur_cfg)
                .execute_sparql(&q.sparql)
                .unwrap();
            let cost = FederatedEngine::new(lake, cost_config(network))
                .execute_sparql(&q.sparql)
                .unwrap();
            assert_eq!(sorted_rows(&heur), sorted_rows(&cost), "{}: answers", q.id);
            if cost.stats.execution_time < heur.stats.execution_time {
                wins += 1;
            }
        }
        assert!(
            wins >= 2,
            "cost-based must win at least 2 of Q3–Q5 under {} (won {wins})",
            network.name
        );
    }
}

// --- EXPLAIN ANALYZE reporting ---------------------------------------------

#[test]
fn explain_analyze_reports_estimates_for_every_operator() {
    let q = workload::q4();
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    let mut cfg = cost_config(NetworkProfile::GAMMA2);
    cfg.tracing = true;
    let engine = FederatedEngine::new(lake, cfg);
    let r = engine.execute_sparql(&q.sparql).unwrap();
    let report = r.obs.as_ref().expect("tracing was on");
    assert!(!report.nodes.is_empty());
    for node in &report.nodes {
        assert!(
            node.estimated >= 1.0,
            "{}: missing estimate ({})",
            node.label,
            node.estimated
        );
    }
    let rendered = fedlake_core::explain_analyze(report);
    let op_lines: Vec<&str> =
        rendered.lines().filter(|l| l.contains("[rows=")).collect();
    assert_eq!(
        op_lines.len(),
        report.nodes.len(),
        "every operator gets an analyzed line:\n{rendered}"
    );
    for line in &op_lines {
        assert!(
            line.contains("est=") && line.contains("err=x"),
            "estimated rows and error must be printed: {line}"
        );
    }
    // The planner counters flow into the trace metrics.
    assert_eq!(report.metrics.counter("planner.strategy.dp"), 1, "{rendered}");
    assert!(report.metrics.counter("planner.plans_costed") > 0);
}

// --- determinism regressions -----------------------------------------------

/// Two perfectly symmetric stars on two sources cost exactly the same,
/// so the DP's choice between the `alpha`-first and `beta`-first orders
/// is a pure tie. The tie must break on the deterministic step key
/// (lowest unit index first), never on map-iteration or fold-accumulator
/// order — the historical bug kept whichever equal-cost state happened
/// to be visited last.
#[test]
fn equal_cost_stars_order_deterministically() {
    fn star_graph(class: &str, pred: &str) -> Graph {
        let mut g = Graph::new();
        for i in 0..10u32 {
            let subject = format!("http://d/{class}{i}");
            g.insert_terms(
                Term::iri(&subject),
                Term::iri(fedlake::rdf::vocab::rdf::TYPE),
                Term::iri(format!("http://v/{class}")),
            );
            g.insert_terms(
                Term::iri(&subject),
                Term::iri(format!("http://v/{pred}")),
                Term::iri(format!("http://o/k{}", i % 5)),
            );
        }
        g
    }
    let mut lake = DataLake::new();
    lake.add_source(DataSource::sparql("alpha", star_graph("C1", "p1")));
    lake.add_source(DataSource::sparql("beta", star_graph("C2", "p2")));
    let sparql = "SELECT ?x WHERE { \
                  ?a a <http://v/C1> . ?a <http://v/p1> ?x . \
                  ?b a <http://v/C2> . ?b <http://v/p2> ?x . }";
    let ast = parse_query(sparql).unwrap();

    let golden = FederatedEngine::new(lake.clone(), cost_config(NetworkProfile::GAMMA1))
        .plan(&ast)
        .unwrap();
    assert_eq!(golden.report.strategy, PlanStrategy::Dp);
    let rendered = format!("{:?}", golden.plan);
    let alpha = rendered.find("alpha").expect("alpha star planned");
    let beta = rendered.find("beta").expect("beta star planned");
    assert!(
        alpha < beta,
        "on an exact cost tie the lower unit index must lead:\n{rendered}"
    );
    for _ in 0..5 {
        let again = FederatedEngine::new(lake.clone(), cost_config(NetworkProfile::GAMMA1))
            .plan(&ast)
            .unwrap();
        assert_eq!(format!("{:?}", again.plan), rendered, "plan must be stable");
    }
}

/// Cost-based planning against a statistics catalog that predates the
/// latest catalog mutation is a refusal, not a silent misestimate:
/// `source_mut` bumps the lake epoch without recollecting, and the
/// planner demands `refresh_templates` before pricing another plan.
/// Heuristic planning never consults the catalog and is unaffected.
#[test]
fn cost_based_planning_refuses_stale_statistics() {
    let mut g = Graph::new();
    g.insert_terms(
        Term::iri("http://d/x1"),
        Term::iri(fedlake::rdf::vocab::rdf::TYPE),
        Term::iri("http://v/Thing"),
    );
    let mut lake = DataLake::new();
    lake.add_source(DataSource::sparql("things", g));
    let sparql = "SELECT ?t WHERE { ?t a <http://v/Thing> . }";
    let ast = parse_query(sparql).unwrap();

    let mut engine = FederatedEngine::new(lake, cost_config(NetworkProfile::NO_DELAY));
    assert!(engine.lake().statistics_fresh());
    engine.plan(&ast).expect("fresh statistics plan fine");

    if let Some(DataSource::Sparql { graph, .. }) = engine.lake_mut().source_mut("things") {
        graph.insert_terms(
            Term::iri("http://d/x2"),
            Term::iri(fedlake::rdf::vocab::rdf::TYPE),
            Term::iri("http://v/Thing"),
        );
    } else {
        panic!("source vanished");
    }
    assert!(!engine.lake().statistics_fresh());
    match engine.plan(&ast) {
        Err(fedlake::core::FedError::StaleStatistics { epoch, stats_epoch }) => {
            assert!(stats_epoch < epoch, "{stats_epoch} vs {epoch}");
        }
        other => panic!("expected StaleStatistics, got {other:?}"),
    }

    engine.lake_mut().refresh_templates();
    let planned = engine.plan(&ast).expect("refresh restores cost-based planning");
    assert!(planned.report.cost_based);

    // The heuristic path plans straight through the same staleness.
    let mut heur = FederatedEngine::new(engine.lake().clone(), {
        let mut cfg = PlanConfig::new(PlanMode::AWARE, NetworkProfile::NO_DELAY);
        cfg.cost_based = false;
        cfg
    });
    heur.lake_mut().source_mut("things");
    assert!(!heur.lake().statistics_fresh());
    heur.plan(&ast).expect("heuristic planning ignores the statistics catalog");
}
