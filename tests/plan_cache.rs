//! The normalized-plan cache's correctness contract.
//!
//! A cache hit must be invisible except for speed: the replayed
//! [`PlannedQuery`] is byte-identical to what cold planning would have
//! produced, across the workload, both planning strategies, both join
//! schedules and replicated lakes. Mutating the catalog, drifting the
//! statistics or flipping an endpoint's health must invalidate exactly
//! the affected entries — and nothing else. The serving layer reuses
//! plans across runs on the same engine and reports the cache counters
//! in its metrics rollup.

use fedlake_core::obs::Metric;
use fedlake_core::{FedError, FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_serve::{run, sorted_csv, Mix, ServeSpec};
use fedlake_sparql::parser::parse_query;
use std::time::Duration;

fn lake_cfg() -> LakeConfig {
    LakeConfig { scale: 0.1, ..Default::default() }
}

fn config(cost_based: bool, overlap: bool, plan_cache: bool) -> PlanConfig {
    let mut cfg = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
    cfg.seed = 1;
    cfg.cost_based = cost_based;
    cfg.overlap = overlap;
    cfg.plan_cache = plan_cache;
    cfg
}

// --- byte-identity of replayed plans ---------------------------------------

/// The workload × {heuristic, cost-based} × {serialized, overlapped} ×
/// {1, 2 replicas} matrix: the second plan of every query is a cache
/// hit and its `Debug` rendering — routes, estimates, report and all —
/// is byte-identical to both the cold plan and a cache-off engine's.
#[test]
fn cache_hits_replay_byte_identical_plans() {
    for q in workload::experiment_queries() {
        for cost_based in [false, true] {
            for overlap in [false, true] {
                for replicas in [1u32, 2] {
                    let mut lake = build_lake_with(&lake_cfg(), q.datasets);
                    if replicas > 1 {
                        for id in q.datasets {
                            lake.set_replicas(*id, replicas);
                        }
                    }
                    let ast = parse_query(&q.sparql).unwrap();
                    let ctx = format!(
                        "{} cost={cost_based} overlap={overlap} replicas={replicas}",
                        q.id
                    );

                    let cached_engine = FederatedEngine::new(
                        lake.clone(),
                        config(cost_based, overlap, true),
                    );
                    let (cold, origin) = cached_engine.plan_cached(&ast).unwrap();
                    assert!(!origin.cached, "{ctx}: first plan must miss");
                    let (warm, origin) = cached_engine.plan_cached(&ast).unwrap();
                    assert!(origin.cached, "{ctx}: second plan must hit");
                    assert_eq!(warm, cold, "{ctx}: replay must be identical");
                    assert_eq!(
                        format!("{warm:?}"),
                        format!("{cold:?}"),
                        "{ctx}: replay must be byte-identical"
                    );

                    let off_engine =
                        FederatedEngine::new(lake, config(cost_based, overlap, false));
                    let (off, origin) = off_engine.plan_cached(&ast).unwrap();
                    assert!(!origin.cached, "{ctx}: cache off never hits");
                    // Structural equality across engines: the schema's
                    // index map renders in per-instance order, so the
                    // byte-level contract only binds the replay above.
                    assert_eq!(off, cold, "{ctx}: caching must not change what is planned");

                    let stats = cached_engine.plan_cache_stats();
                    assert_eq!(stats.lookups, 2, "{ctx}");
                    assert_eq!((stats.hits, stats.misses), (1, 1), "{ctx}");
                    assert_eq!(
                        off_engine.plan_cache_stats(),
                        Default::default(),
                        "{ctx}: cache off must not count lookups"
                    );
                }
            }
        }
    }
}

/// Executing a replayed plan produces the same answers, stats and
/// EXPLAIN body as the cold run, on both the streaming and the
/// vectorized executor.
#[test]
fn cached_execution_matches_cold_execution() {
    let q = workload::q3();
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    for batch in [false, true] {
        for cost_based in [false, true] {
            let mut cfg = config(cost_based, true, true);
            cfg.batch = batch;
            let engine = FederatedEngine::new(lake.clone(), cfg);
            let cold = engine.execute_sparql(&q.sparql).unwrap();
            let warm = engine.execute_sparql(&q.sparql).unwrap();
            let ctx = format!("batch={batch} cost={cost_based}");
            assert_eq!(warm.rows, cold.rows, "{ctx}: answers");
            assert_eq!(warm.stats, cold.stats, "{ctx}: stats");
            assert!(
                cold.explain.contains("plan: cold["),
                "{ctx}: first EXPLAIN is cold:\n{}",
                cold.explain
            );
            assert!(
                warm.explain.contains("plan: cached["),
                "{ctx}: second EXPLAIN is cached:\n{}",
                warm.explain
            );
            let strip = |e: &str| {
                e.lines()
                    .filter(|l| !l.starts_with("plan: "))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(
                strip(&warm.explain),
                strip(&cold.explain),
                "{ctx}: EXPLAIN bodies must match"
            );
        }
    }
}

// --- invalidation ----------------------------------------------------------

/// Mutating a source bumps the lake epoch: the next plan is a miss that
/// replans against the refreshed catalog instead of replaying routes
/// over data that no longer exists.
#[test]
fn source_mutation_invalidates_the_entry() {
    let q = workload::q1();
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    let ast = parse_query(&q.sparql).unwrap();
    let mut engine = FederatedEngine::new(lake, config(true, false, true));

    engine.plan_cached(&ast).unwrap();
    let (_, origin) = engine.plan_cached(&ast).unwrap();
    assert!(origin.cached);

    // The mutable borrow alone bumps the lake epoch: whatever the caller
    // does with it, cached routes into the old catalog are suspect.
    engine.lake_mut().source_mut("chebi").expect("chebi exists");
    // Stale statistics refuse cost-based planning outright — the cache
    // cannot resurrect a plan the planner would no longer produce.
    assert!(matches!(
        engine.plan_cached(&ast),
        Err(FedError::StaleStatistics { .. })
    ));
    engine.lake_mut().refresh_templates();
    let (_, origin) = engine.plan_cached(&ast).unwrap();
    assert!(!origin.cached, "the epoch moved: the entry must not replay");
    let stats = engine.plan_cache_stats();
    assert!(stats.invalidations >= 1, "{stats:?}");
    let (_, origin) = engine.plan_cached(&ast).unwrap();
    assert!(origin.cached, "the refreshed plan is cacheable again");
}

/// Catalog drift (statistics scaled after collection) bumps the epoch
/// too: the cached plan carries the old estimates and must not replay.
#[test]
fn statistics_drift_invalidates_the_entry() {
    let q = workload::q1();
    let lake = build_lake_with(&lake_cfg(), q.datasets);
    let ast = parse_query(&q.sparql).unwrap();
    let mut engine = FederatedEngine::new(lake, config(true, false, true));

    let (before, _) = engine.plan_cached(&ast).unwrap();
    engine
        .lake_mut()
        .statistics_mut()
        .source_mut("chebi")
        .expect("chebi statistics")
        .scale(1000);
    let (after, origin) = engine.plan_cached(&ast).unwrap();
    assert!(!origin.cached, "drifted statistics must not replay");
    assert!(
        after.report.estimated_rows > before.report.estimated_rows,
        "the replan must price the drifted catalog ({} vs {})",
        after.report.estimated_rows,
        before.report.estimated_rows
    );
}

/// A health flip invalidates exactly the entries whose plans touch the
/// flipped endpoint: the other query's entry revalidates and still
/// hits.
#[test]
fn health_flips_invalidate_only_affected_entries() {
    let lake = build_lake_with(&lake_cfg(), &["chebi", "drugbank"]);
    let q1 = parse_query(&workload::q1().sparql).unwrap(); // chebi only
    let q2 = parse_query(&workload::q2().sparql).unwrap(); // drugbank only
    let engine = FederatedEngine::new(lake, config(false, false, true));

    engine.plan_cached(&q1).unwrap();
    engine.plan_cached(&q2).unwrap();

    // Failures on chebi move the health generation *and* chebi's digest.
    engine.health().observe("chebi", 0, 9);

    let (_, origin) = engine.plan_cached(&q2).unwrap();
    assert!(origin.cached, "drugbank's plan never consulted chebi's health");
    let (_, origin) = engine.plan_cached(&q1).unwrap();
    assert!(!origin.cached, "chebi's plan must replan under the new health");

    let stats = engine.plan_cache_stats();
    assert_eq!(stats.lookups, 4, "{stats:?}");
    assert_eq!(stats.hits, 1, "{stats:?}");
    assert_eq!(stats.invalidations, 1, "{stats:?}");
}

// --- the serving layer -----------------------------------------------------

/// Serving the same spec twice on one cache-on engine: the second run's
/// jobs are all replays, every answer byte-matches the first run and a
/// cache-off engine, and the rollup's cache gauges reconcile with the
/// engine's counters.
#[test]
fn serve_runs_reuse_plans_without_changing_answers() {
    let spec = ServeSpec {
        clients: 8,
        queries_per_client: 2,
        mix: Mix::default(),
        seed: 21,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 4,
        deadline: None,
    };
    let lake = build_lake_with(&LakeConfig { scale: 0.05, ..Default::default() }, &spec.mix.datasets());

    let cached_engine = FederatedEngine::new(lake.clone(), config(false, false, true));
    let first = run(&cached_engine, &spec).unwrap();
    let second = run(&cached_engine, &spec).unwrap();
    let off = run(&FederatedEngine::new(lake, config(false, false, false)), &spec).unwrap();

    assert!(
        second.jobs.iter().all(|j| j.cached),
        "every second-run job replans a first-run query"
    );
    assert!(off.jobs.iter().all(|j| !j.cached));
    for ((a, b), c) in first
        .outcome
        .outcomes
        .iter()
        .zip(&second.outcome.outcomes)
        .zip(&off.outcome.outcomes)
    {
        assert_eq!(a.label, b.label);
        let csv = sorted_csv(&a.vars, &a.rows);
        assert_eq!(csv, sorted_csv(&b.vars, &b.rows), "{}: across runs", a.label);
        assert_eq!(csv, sorted_csv(&c.vars, &c.rows), "{}: vs cache off", a.label);
        assert_eq!(a.stats, b.stats, "{}", a.label);
    }
    assert_eq!(first.report, second.report, "the rollup is cache-invariant");

    let stats = cached_engine.plan_cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
    assert!(stats.hits as usize >= second.jobs.len(), "{stats:?}");
    let gauge = |name: &str| match second.outcome.metrics.get(name) {
        Some(Metric::Gauge { last, .. }) => last,
        other => panic!("{name}: {other:?}"),
    };
    assert_eq!(gauge("serve.plancache.lookups"), stats.lookups, "{stats:?}");
    assert_eq!(gauge("serve.plancache.hits"), stats.hits, "{stats:?}");
    assert_eq!(gauge("serve.plancache.misses"), stats.misses, "{stats:?}");
    let job_hits = second.outcome.metrics.counter("serve.plancache.job_hits");
    assert_eq!(job_hits as usize, second.jobs.len(), "all second-run jobs hit");
    assert!(
        !off.outcome
            .metrics
            .iter()
            .any(|(name, _)| name.starts_with("serve.plancache.")),
        "cache-off rollups must not mention the cache"
    );
}
