//! Invariants of the deterministic trace recorder.
//!
//! Tracing must be **passive** (answers, stats and the answer trace are
//! identical with it on or off), **deterministic** (the same seed and
//! config produce byte-identical trace exports), and **reconciled** (the
//! spans' row and message counts agree with `FedStats` and the per-link
//! counters, so `EXPLAIN ANALYZE` never lies about the execution it
//! annotates).

use fedlake_core::obs::{Span, SpanKind};
use fedlake_core::{FedResult, FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::{FaultPlan, NetworkProfile};
use fedlake_sparql::parser::parse_query;
use std::collections::BTreeMap;
use std::time::Duration;

fn run(q: &workload::WorkloadQuery, cfg: PlanConfig) -> FedResult {
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q.datasets);
    let engine = FederatedEngine::new(lake, cfg);
    let ast = parse_query(&q.sparql).unwrap();
    let planned = engine.plan(&ast).unwrap();
    engine.execute_planned(&planned).unwrap()
}

fn traced(q: &workload::WorkloadQuery, mut cfg: PlanConfig) -> FedResult {
    cfg.tracing = true;
    run(q, cfg)
}

fn sorted_rows(r: &FedResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows.iter().map(|row| row.to_string()).collect();
    v.sort();
    v
}

/// Flaky-but-recoverable links: every fault is retried within the budget.
fn recoverable_faults() -> FaultPlan {
    FaultPlan { drop_prob: 0.2, truncate_prob: 0.1, ..FaultPlan::NONE }
}

/// Every span is well-formed: ends after it starts, has an existing
/// parent (except the root), and lies inside its parent's envelope.
fn assert_span_tree(label: &str, spans: &[Span]) {
    assert!(!spans.is_empty(), "{label}: no spans recorded");
    assert_eq!(spans[0].kind, SpanKind::Query, "{label}: span 0 is the root");
    assert_eq!(spans[0].parent, None, "{label}: root has no parent");
    for (i, s) in spans.iter().enumerate() {
        assert_eq!(s.id as usize, i, "{label}: ids are list indices");
        assert!(s.end >= s.start, "{label}: span {i} ({:?}) ends before it starts", s.kind);
        match s.parent {
            None => assert_eq!(i, 0, "{label}: only the root may be parentless"),
            Some(p) => {
                let p = &spans[p as usize];
                assert!(
                    s.start >= p.start && s.end <= p.end,
                    "{label}: span {i} ({:?} {:?}..{:?}) outside parent {:?} ({:?}..{:?})",
                    s.kind,
                    s.start,
                    s.end,
                    p.kind,
                    p.start,
                    p.end
                );
            }
        }
    }
    // Link activity on one lane happens on one timeline: transfer and
    // fault spans are recorded in non-decreasing start order per lane.
    let mut last: BTreeMap<&str, Duration> = BTreeMap::new();
    for s in spans {
        if !matches!(s.kind, SpanKind::Transfer | SpanKind::Fault) {
            continue;
        }
        let prev = last.entry(s.lane.as_str()).or_insert(Duration::ZERO);
        assert!(
            s.start >= *prev,
            "{label}: lane {} transfer at {:?} starts before previous {:?}",
            s.lane,
            s.start,
            prev
        );
        *prev = s.start;
    }
}

#[test]
fn span_trees_are_well_formed_in_both_schedules() {
    for q in &workload::experiment_queries() {
        for overlap in [false, true] {
            let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
            cfg.overlap = overlap;
            let r = traced(q, cfg);
            let obs = r.obs.as_ref().expect("tracing enabled");
            let label = format!("{}/overlap={overlap}", q.id);
            assert_span_tree(&label, &obs.spans);
            // Answer instants share the engine lane and never run backwards.
            let mut prev = Duration::ZERO;
            for s in obs.spans.iter().filter(|s| s.kind == SpanKind::Answer) {
                assert!(s.start >= prev, "{label}: answer instants regress");
                prev = s.start;
            }
        }
    }
}

#[test]
fn transfer_spans_reconcile_with_stats_and_links() {
    for q in &workload::experiment_queries() {
        for overlap in [false, true] {
            let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
            cfg.overlap = overlap;
            let r = traced(q, cfg);
            let obs = r.obs.as_ref().expect("tracing enabled");
            let label = format!("{}/overlap={overlap}", q.id);

            // Per-source successful-transfer spans sum to the link counters,
            // and the totals match FedStats.
            let mut rows_by_lane: BTreeMap<String, u64> = BTreeMap::new();
            let mut msgs_by_lane: BTreeMap<String, u64> = BTreeMap::new();
            for s in obs.spans.iter().filter(|s| s.kind == SpanKind::Transfer) {
                *rows_by_lane.entry(s.lane.clone()).or_default() += s.rows;
                *msgs_by_lane.entry(s.lane.clone()).or_default() += 1;
            }
            let mut rows_total = 0;
            let mut msgs_total = 0;
            for (source, report) in &obs.sources {
                let lane = format!("src:{source}");
                assert_eq!(
                    rows_by_lane.get(&lane).copied().unwrap_or(0),
                    report.link.rows,
                    "{label}: {source} span rows vs link rows"
                );
                assert_eq!(
                    msgs_by_lane.get(&lane).copied().unwrap_or(0),
                    report.link.messages,
                    "{label}: {source} span messages vs link messages"
                );
                rows_total += report.link.rows;
                msgs_total += report.link.messages;
            }
            assert_eq!(rows_total, r.stats.rows_transferred, "{label}: rows_transferred");
            assert_eq!(msgs_total, r.stats.messages, "{label}: messages");

            // The metrics registry mirrors the engine stats.
            assert_eq!(obs.metrics.counter("engine.answers"), r.stats.answers, "{label}");
            assert_eq!(obs.metrics.counter("engine.messages"), r.stats.messages, "{label}");
            assert_eq!(
                obs.metrics.counter("engine.rows_transferred"),
                r.stats.rows_transferred,
                "{label}"
            );
            assert_eq!(obs.metrics.counter("engine.sql_queries"), r.stats.sql_queries, "{label}");

            // The report totals are the stats totals.
            assert_eq!(obs.answers_total, r.stats.answers, "{label}");
            assert_eq!(obs.total_time, r.stats.execution_time, "{label}");
        }
    }
}

#[test]
fn fault_spans_reconcile_under_chaos() {
    let q = &workload::by_id("Q1").unwrap();
    for overlap in [false, true] {
        let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
        cfg.overlap = overlap;
        cfg.faults = recoverable_faults();
        cfg.seed = 7;
        let r = traced(q, cfg);
        let obs = r.obs.as_ref().expect("tracing enabled");
        let label = format!("Q1/chaos/overlap={overlap}");

        let count = |kind: SpanKind| obs.spans.iter().filter(|s| s.kind == kind).count() as u64;
        let faults_from_links: u64 = obs
            .sources
            .values()
            .map(|s| s.link.dropped + s.link.truncated + s.link.outage_faults)
            .sum();
        assert!(faults_from_links > 0, "{label}: chaos config injected no faults");
        assert_eq!(count(SpanKind::Fault), faults_from_links, "{label}: fault spans");
        // Every faulted attempt is followed by a detection timeout; every
        // retry (all but the budget-exhausting attempt) by a backoff.
        assert_eq!(count(SpanKind::Timeout), faults_from_links, "{label}: timeout spans");
        assert_eq!(count(SpanKind::Backoff), r.stats.retries, "{label}: backoff spans");
        let retries_from_sources: u64 = obs.sources.values().map(|s| s.retries).sum();
        assert_eq!(retries_from_sources, r.stats.retries, "{label}: per-source retries");
    }
}

#[test]
fn tracing_is_passive() {
    for q in &workload::experiment_queries() {
        for mode in [PlanMode::Unaware, PlanMode::AWARE] {
            for network in NetworkProfile::ALL {
                for overlap in [false, true] {
                    let mut cfg = PlanConfig::new(mode, network);
                    cfg.overlap = overlap;
                    let off = run(q, cfg);
                    let on = traced(q, cfg);
                    let label =
                        format!("{}/{}/{}/overlap={overlap}", q.id, mode.label(), network.name);
                    assert!(off.obs.is_none(), "{label}: untraced run carries a report");
                    assert!(on.obs.is_some(), "{label}: traced run lost its report");
                    assert_eq!(sorted_rows(&off), sorted_rows(&on), "{label}: answers");
                    assert_eq!(off.stats, on.stats, "{label}: stats");
                    assert_eq!(off.trace, on.trace, "{label}: answer trace");
                }
            }
        }
    }
}

/// Vectorized execution keeps every trace invariant: with batching on and
/// multi-row message chunks, tracing stays passive, span trees stay
/// well-formed, transfer spans still reconcile with `FedStats` and the
/// link counters, and — the EXPLAIN ANALYZE contract — every plan node's
/// row count is identical to what the row-at-a-time driver reports
/// (batched emissions are counted per selected row, not per batch).
#[test]
fn batch_mode_traces_reconcile_and_stay_passive() {
    for q in &workload::experiment_queries() {
        for overlap in [false, true] {
            let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
            cfg.overlap = overlap;
            cfg.batch = true;
            cfg.batch_size = 256;
            cfg.rows_per_message = 8;
            let label = format!("{}/batch/overlap={overlap}", q.id);

            // Passive: a traced batch run changes nothing observable.
            let off = run(q, cfg);
            let on = traced(q, cfg);
            assert_eq!(sorted_rows(&off), sorted_rows(&on), "{label}: answers");
            assert_eq!(off.stats, on.stats, "{label}: stats");
            assert_eq!(off.trace, on.trace, "{label}: answer trace");

            let obs = on.obs.as_ref().expect("tracing enabled");
            assert_span_tree(&label, &obs.spans);

            // Reconciled: span totals still match stats and links.
            let mut rows_total = 0;
            let mut msgs_total = 0;
            for report in obs.sources.values() {
                rows_total += report.link.rows;
                msgs_total += report.link.messages;
            }
            assert_eq!(rows_total, on.stats.rows_transferred, "{label}: rows_transferred");
            assert_eq!(msgs_total, on.stats.messages, "{label}: messages");
            assert_eq!(obs.metrics.counter("engine.answers"), on.stats.answers, "{label}");
            assert_eq!(obs.answers_total, on.stats.answers, "{label}");
            assert_eq!(obs.total_time, on.stats.execution_time, "{label}");

            // Per-operator row counts are batching-invariant: the same
            // plan driven row-at-a-time reports the same rows_out per
            // node, so EXPLAIN ANALYZE never changes its counts under
            // vectorization.
            let mut row_cfg = cfg;
            row_cfg.batch = false;
            let row_traced = traced(q, row_cfg);
            let row_obs = row_traced.obs.as_ref().expect("tracing enabled");
            assert_eq!(obs.nodes.len(), row_obs.nodes.len(), "{label}: node count");
            for (b, r) in obs.nodes.iter().zip(&row_obs.nodes) {
                assert_eq!(b.label, r.label, "{label}: node labels");
                assert_eq!(
                    b.rows_out, r.rows_out,
                    "{label}: rows_out diverges on node {}",
                    b.label
                );
            }
        }
    }
}

#[test]
fn same_seed_runs_export_identical_bytes() {
    let q = &workload::by_id("Q2").unwrap();
    for overlap in [false, true] {
        for faulty in [false, true] {
            let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA2);
            cfg.overlap = overlap;
            if faulty {
                cfg.faults = recoverable_faults();
            }
            let a = traced(q, cfg);
            let b = traced(q, cfg);
            let label = format!("Q2/overlap={overlap}/faulty={faulty}");
            assert_eq!(
                a.chrome_trace().unwrap(),
                b.chrome_trace().unwrap(),
                "{label}: chrome trace bytes diverge"
            );
            assert_eq!(
                a.explain_analyze().unwrap(),
                b.explain_analyze().unwrap(),
                "{label}: explain analyze diverges"
            );
        }
    }
}

/// The metrics registry's serialized forms are deterministic at serve
/// scale: two same-seed serve runs (recorder and tracing on) render
/// byte-identical Prometheus expositions and text rollups.
#[test]
fn serve_metrics_exposition_is_byte_identical_across_reruns() {
    use fedlake_serve::{run, ServeSpec};

    let spec = ServeSpec {
        clients: 8,
        queries_per_client: 2,
        seed: 21,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 4,
        ..Default::default()
    };
    let lake = build_lake_with(
        &LakeConfig { scale: 0.05, ..Default::default() },
        &spec.mix.datasets(),
    );
    let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
    cfg.seed = 1;
    cfg.tracing = true;
    cfg.recorder = true;

    let a = run(&FederatedEngine::new(lake.clone(), cfg), &spec).unwrap();
    let b = run(&FederatedEngine::new(lake, cfg), &spec).unwrap();
    let prom = a.outcome.metrics.prometheus();
    assert_eq!(prom, b.outcome.metrics.prometheus(), "prometheus bytes diverge");
    assert_eq!(a.outcome.metrics.render(), b.outcome.metrics.render(), "rollup diverges");
    assert!(prom.contains("# TYPE fedlake_serve_admitted counter"), "{prom}");
    assert!(prom.contains("fedlake_serve_latency_ns_count"), "{prom}");
}

/// Merging every session's registry into one reproduces the fleet view:
/// the merged per-session counters reconcile with the serve rollup and
/// with the sessions they came from, and merging in job order twice is
/// byte-deterministic.
#[test]
fn merged_session_registries_reconcile_with_the_serve_rollup() {
    use fedlake_core::MetricsRegistry;
    use fedlake_serve::{run, ServeSpec};

    let spec = ServeSpec {
        clients: 6,
        queries_per_client: 2,
        seed: 11,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 4,
        ..Default::default()
    };
    let lake = build_lake_with(
        &LakeConfig { scale: 0.05, ..Default::default() },
        &spec.mix.datasets(),
    );
    let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
    cfg.seed = 1;
    cfg.tracing = true;

    let r = run(&FederatedEngine::new(lake, cfg), &spec).unwrap();
    let merge_all = || {
        let mut fleet = MetricsRegistry::new();
        for o in &r.outcome.outcomes {
            fleet.merge(&o.obs.as_ref().expect("tracing on").metrics);
        }
        fleet
    };
    let fleet = merge_all();
    let answers: u64 = r.outcome.outcomes.iter().map(|o| o.stats.answers).sum();
    assert_eq!(fleet.counter("engine.answers"), answers, "merged answers");
    assert_eq!(
        fleet.counter("engine.answers"),
        r.outcome.metrics.counter("serve.answers"),
        "merged session answers must equal the serve rollup"
    );
    let sql: u64 = r.outcome.outcomes.iter().map(|o| o.stats.engine.sql_queries).sum();
    assert_eq!(fleet.counter("engine.sql_queries"), sql, "merged sql queries");
    assert_eq!(
        fleet.counter("planner.queries"),
        r.outcome.outcomes.len() as u64,
        "one planner record per session"
    );
    assert_eq!(
        fleet.prometheus(),
        merge_all().prometheus(),
        "merge is not byte-deterministic"
    );
}

/// Under chaos, the registry's per-link counters agree with the span
/// tree and the engine stats — faults, retries and messages are counted
/// once, through every pipe.
#[test]
fn chaos_counters_reconcile_with_spans() {
    let q = &workload::by_id("Q1").unwrap();
    let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
    cfg.faults = recoverable_faults();
    cfg.seed = 7;
    let r = traced(q, cfg);
    let obs = r.obs.as_ref().expect("tracing enabled");

    let count = |kind: SpanKind| obs.spans.iter().filter(|s| s.kind == kind).count() as u64;
    let mut faults = 0;
    let mut retries = 0;
    let mut messages = 0;
    for source in obs.sources.keys() {
        faults += obs.metrics.counter(&format!("link.{source}.faults"));
        retries += obs.metrics.counter(&format!("link.{source}.retries"));
        messages += obs.metrics.counter(&format!("link.{source}.messages"));
    }
    assert!(faults > 0, "chaos config injected no faults");
    assert_eq!(faults, count(SpanKind::Fault), "fault counters vs fault spans");
    assert_eq!(retries, r.stats.retries, "retry counters vs stats");
    assert_eq!(messages, count(SpanKind::Transfer), "message counters vs transfer spans");
    assert_eq!(obs.metrics.counter("engine.retries"), r.stats.retries);
}

#[test]
fn explain_analyze_reports_the_stats() {
    let q = &workload::by_id("Q1").unwrap();
    let r = traced(q, PlanConfig::aware(NetworkProfile::GAMMA1));
    let text = r.explain_analyze().unwrap();
    assert!(text.contains(&format!("answers={}", r.stats.answers)), "{text}");
    assert!(text.contains(&format!("messages={}", r.stats.messages)), "{text}");
    assert!(
        text.contains(&format!("rows transferred={}", r.stats.rows_transferred)),
        "{text}"
    );
    // One annotated line per plan node, plus a link sub-line per source.
    let obs = r.obs.as_ref().unwrap();
    for node in &obs.nodes {
        assert!(text.contains(&node.label), "missing node {:?} in:\n{text}", node.label);
    }
    for source in obs.sources.keys() {
        assert!(text.contains(&format!("link[{source}]")), "{text}");
    }
}

#[test]
fn chrome_trace_has_a_lane_per_source() {
    let q = &workload::by_id("Q4").unwrap();
    let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
    cfg.overlap = true;
    let r = traced(q, cfg);
    let json = r.chrome_trace().unwrap();
    assert!(json.starts_with("{\"traceEvents\":[\n"), "header: {json:.40}");
    assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}\n"), "footer");
    // Cheap structural sanity: every line inside the array is an object,
    // and braces/brackets balance.
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "unbalanced braces");
    assert_eq!(json.matches('[').count(), json.matches(']').count(), "unbalanced brackets");
    let obs = r.obs.as_ref().unwrap();
    assert!(!obs.sources.is_empty());
    for source in obs.sources.keys() {
        let lane = format!("\"name\":\"src:{source}\"");
        assert!(json.contains(&lane), "missing thread_name for {source}");
        // …and that lane carries at least one complete event.
        assert!(
            obs.spans
                .iter()
                .any(|s| s.kind == SpanKind::Transfer && s.lane == format!("src:{source}")),
            "no transfer span for {source}"
        );
    }
    // Complete events and instants both made it out.
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"i\""));
}
