//! Determinism contract of the serving layer.
//!
//! A serve run is a pure function of its seeds: the same [`ServeSpec`]
//! over the same lake reproduces byte-identical per-query answers,
//! per-session statistics, latencies, the metrics rollup and the summary
//! report. A *different* seed produces a different interleaving — but
//! every query's answer set still byte-matches its solo execution,
//! because contention moves answers in time, never across queries.
//!
//! Also pins the PR 7 lift-cache regression: the engine-persistent lift
//! cache is keyed by the schema's *slot-layout fingerprint* (not the
//! schema `Arc`'s address, which the allocator may reuse after a plan is
//! dropped), so cached and uncached sessions can interleave freely while
//! the reference executor stays cold.

use fedlake_core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_serve::{run, solo_golden, sorted_csv, Mix, ServeSpec};
use fedlake_sparql::parser::parse_query;
use std::time::Duration;

fn spec(seed: u64) -> ServeSpec {
    ServeSpec {
        clients: 6,
        queries_per_client: 2,
        mix: Mix::default(),
        seed,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 4,
        deadline: None,
    }
}

fn config() -> PlanConfig {
    let mut c = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
    c.seed = 1;
    c
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    let s = spec(21);
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, &s.mix.datasets());

    let a = run(&FederatedEngine::new(lake.clone(), config()), &s).unwrap();
    let b = run(&FederatedEngine::new(lake.clone(), config()), &s).unwrap();

    assert_eq!(a.instances, b.instances, "same seed must instantiate the same workload");
    assert_eq!(a.outcome.outcomes.len(), b.outcome.outcomes.len());
    for (x, y) in a.outcome.outcomes.iter().zip(&b.outcome.outcomes) {
        assert_eq!(x.label, y.label);
        assert_eq!(
            sorted_csv(&x.vars, &x.rows),
            sorted_csv(&y.vars, &y.rows),
            "{}: answers must be byte-identical across reruns",
            x.label
        );
        assert_eq!(x.stats, y.stats, "{}: per-session stats must match", x.label);
        assert_eq!(
            (x.arrival, x.admitted, x.finish, x.latency, x.first_answer),
            (y.arrival, y.admitted, y.finish, y.latency, y.first_answer),
            "{}: per-session timings must match",
            x.label
        );
        assert!(x.error.is_none(), "{}: fault-free run must complete: {:?}", x.label, x.error);
    }
    assert_eq!(a.outcome.makespan, b.outcome.makespan);
    assert_eq!(
        a.outcome.metrics.render(),
        b.outcome.metrics.render(),
        "server rollup must be byte-identical"
    );
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn every_seed_matches_the_solo_golden() {
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, &Mix::default().datasets());
    let mut latency_sets = Vec::new();
    for seed in [3u64, 17] {
        let s = spec(seed);
        let r = run(&FederatedEngine::new(lake.clone(), config()), &s).unwrap();
        for (inst, out) in r.instances.iter().zip(&r.outcome.outcomes) {
            assert!(out.completed(), "{}: fault-free serve must complete", out.label);
            let golden = solo_golden(&lake, config(), &inst.sparql).unwrap();
            assert_eq!(
                sorted_csv(&out.vars, &out.rows),
                sorted_csv(&golden.vars, &golden.rows),
                "{}: served answers must byte-match the solo execution",
                out.label
            );
        }
        latency_sets.push(
            r.outcome.outcomes.iter().map(|o| (o.label.clone(), o.latency)).collect::<Vec<_>>(),
        );
    }
    assert_ne!(
        latency_sets[0], latency_sets[1],
        "different seeds must produce different interleavings"
    );
}

/// The lift cache must survive plans being dropped and re-created while
/// other sessions (with other schemas) run in between: its key is the
/// schema's slot-layout fingerprint, so a reused allocation can never
/// serve wrongly-slotted columns. Each engine execution is compared to a
/// fresh-engine golden, and the reference executor — which never touches
/// the cache — must agree throughout.
#[test]
fn lift_cache_sessions_interleave_safely() {
    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, &Mix::default().datasets());
    let engine = FederatedEngine::new(lake.clone(), config());

    // Interleave two plan shapes that share a source (Q3 and Q5 both
    // read Diseasome) across repeated plan/execute/drop cycles, warming
    // and re-hitting the cache under allocator reuse.
    for i in 0..6 {
        let q = if i % 2 == 0 { workload::q3() } else { workload::q5() };
        let ast = parse_query(&q.sparql).unwrap();
        let planned = engine.plan(&ast).unwrap();
        let warm = engine.execute_planned(&planned).unwrap();
        let golden = solo_golden(&lake, config(), &q.sparql).unwrap();
        assert_eq!(
            sorted_csv(&warm.vars, &warm.rows),
            sorted_csv(&golden.vars, &golden.rows),
            "{} iteration {i}: cached session must match a cold engine",
            q.id
        );
        assert_eq!(
            warm.stats, golden.stats,
            "{} iteration {i}: a cache hit must re-charge identical simulated cost",
            q.id
        );
        // The reference executor stays cold by construction: it never
        // consults the engine's lift cache, and must still agree.
        let reference = engine.execute_planned_reference(&planned).unwrap();
        assert_eq!(
            sorted_csv(&warm.vars, &warm.rows),
            sorted_csv(&reference.vars, &reference.rows),
            "{} iteration {i}: reference executor must agree while the cache is warm",
            q.id
        );
    }

    // A serve run on the same (warm) engine mixes cached and uncached
    // sessions; every answer still matches a cold solo run.
    let s = spec(5);
    let r = run(&engine, &s).unwrap();
    for (inst, out) in r.instances.iter().zip(&r.outcome.outcomes) {
        let golden = solo_golden(&lake, config(), &inst.sparql).unwrap();
        assert_eq!(
            sorted_csv(&out.vars, &out.rows),
            sorted_csv(&golden.vars, &golden.rows),
            "{}: warm-engine serve must match cold solo execution",
            out.label
        );
    }
}

/// `FEDLAKE_SERVE=1` smoke: the fixed-seed mini-load tier-1 runs. Small
/// N, one pass, asserts the rollup adds up — fast enough for every gate.
#[test]
fn serve_smoke() {
    if std::env::var("FEDLAKE_SERVE").map(|v| v != "1").unwrap_or(false) {
        return;
    }
    let s = ServeSpec {
        clients: 4,
        queries_per_client: 1,
        seed: 7,
        mean_interarrival: Duration::from_millis(1),
        max_in_flight: 2,
        ..Default::default()
    };
    let lake_cfg = LakeConfig { scale: 0.02, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, &s.mix.datasets());
    let r = run(&FederatedEngine::new(lake, config()), &s).unwrap();
    assert_eq!(r.report.jobs, 4);
    assert_eq!(r.report.completed, 4);
    assert_eq!(
        r.outcome.metrics.counter("serve.admitted"),
        r.report.completed + r.report.timeouts + r.report.degraded + r.report.failed
    );
    assert!(r.report.jain > 0.0 && r.report.jain <= 1.0 + 1e-12);
}
