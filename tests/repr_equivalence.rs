//! Representation-equivalence suite: the interned slot-row engine must
//! return byte-identical answers and identical cost counters to the
//! reference term-row (`BTreeMap`) executor for every workload query,
//! every network profile and both planning modes. The two executors share
//! the wrapper streams and bind-join machinery, so link traffic matches by
//! construction — this suite pins that down and additionally checks the
//! engine-side operator counters that are mirrored by hand.

use fedlake_core::{FaultPlan, FedResult, FederatedEngine, PlanConfig, PlanMode, RetryPolicy};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_sparql::parser::parse_query;

fn sorted_rows(r: &FedResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows.iter().map(|row| row.to_string()).collect();
    v.sort();
    v
}

fn assert_equivalent(label: &str, a: &FedResult, b: &FedResult) {
    assert_eq!(sorted_rows(a), sorted_rows(b), "{label}: answer rows diverge");
    let sa = &a.stats;
    let sb = &b.stats;
    assert_eq!(sa.answers, sb.answers, "{label}: answers");
    assert_eq!(sa.messages, sb.messages, "{label}: messages");
    assert_eq!(sa.rows_transferred, sb.rows_transferred, "{label}: rows_transferred");
    assert_eq!(sa.sql_queries, sb.sql_queries, "{label}: sql_queries");
    assert_eq!(sa.engine_filter_evals, sb.engine_filter_evals, "{label}: engine_filter_evals");
    assert_eq!(sa.engine_join_probes, sb.engine_join_probes, "{label}: engine_join_probes");
    assert_eq!(sa.services, sb.services, "{label}: services");
    assert_eq!(sa.engine_operators, sb.engine_operators, "{label}: engine_operators");
    assert_eq!(sa.merged_services, sb.merged_services, "{label}: merged_services");
    assert_eq!(sa.network_delay, sb.network_delay, "{label}: network_delay");
    assert_eq!(sa.execution_time, sb.execution_time, "{label}: execution_time");
    assert_eq!(sa.plan_label, sb.plan_label, "{label}: plan_label");
    assert_eq!(sa.retries, sb.retries, "{label}: retries");
    assert_eq!(sa.source_failures, sb.source_failures, "{label}: source_failures");
    assert_eq!(sa.degraded, sb.degraded, "{label}: degraded");
}

fn run_suite(mode: PlanMode, mode_name: &str) {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in NetworkProfile::ALL {
            let engine =
                FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let planned = engine.plan(&ast).unwrap();
            let interned = engine.execute_planned(&planned).unwrap();
            let reference = engine.execute_planned_reference(&planned).unwrap();
            let label = format!("{}/{mode_name}/{}", q.id, network.name);
            assert!(interned.stats.answers > 0, "{label}: query returned no rows");
            assert_equivalent(&label, &interned, &reference);
        }
    }
}

#[test]
fn interned_rows_match_reference_unaware() {
    run_suite(PlanMode::Unaware, "unaware");
}

#[test]
fn interned_rows_match_reference_aware() {
    run_suite(PlanMode::AWARE, "aware");
}

/// Parity must also hold with fault injection and retries active: the two
/// executors share the wrapper streams, so they see the same fault
/// decisions, issue the same retries and — when the budget is exhausted —
/// fail with the same error.
#[test]
fn interned_rows_match_reference_with_faults() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let faults = FaultPlan {
        drop_prob: 0.08,
        truncate_prob: 0.05,
        spike_prob: 0.10,
        spike_factor: 8.0,
        outage_after: Some(40),
        outage_len: 2,
    };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let mut config = PlanConfig::new(PlanMode::AWARE, network);
            config.faults = faults;
            config.retry = RetryPolicy { max_attempts: 6, ..Default::default() };
            let engine = FederatedEngine::new(lake.clone(), config);
            let planned = engine.plan(&ast).unwrap();
            let label = format!("{}/faults/{}", q.id, network.name);
            let interned = engine.execute_planned(&planned);
            let reference = engine.execute_planned_reference(&planned);
            match (interned, reference) {
                (Ok(a), Ok(b)) => {
                    assert_equivalent(&label, &a, &b);
                    assert!(
                        a.stats.retries > 0 || a.stats.source_failures.is_empty(),
                        "{label}: faults without retries"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{label}: errors diverge"),
                (a, b) => panic!("{label}: outcomes diverge: {a:?} vs {b:?}"),
            }
        }
    }
}

/// The vectorized driver must be a pure representation change: across the
/// full matrix batch × {serialized, overlapped} × {1, 2} replicas — with
/// multi-row message chunks so batches genuinely carry several rows — the
/// batched executor returns byte-identical answers, stats and traffic
/// against the row-at-a-time reference executor, and the sorted CSV stays
/// byte-identical to the golden snapshots under `tests/golden/`.
#[test]
fn batch_matrix_matches_reference_and_golden_snapshots() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for q in workload::experiment_queries() {
        let golden_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{}.csv", q.id.to_lowercase()));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden snapshot {golden_path:?} ({e})"));
        let ast = parse_query(&q.sparql).unwrap();
        for overlap in [false, true] {
            for replicas in [1u32, 2] {
                let mut lake = build_lake_with(&lake_cfg, q.datasets);
                if replicas > 1 {
                    let ids: Vec<String> =
                        lake.sources().iter().map(|s| s.id().to_string()).collect();
                    for id in ids {
                        lake.set_replicas(id, replicas);
                    }
                }
                let mut config = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
                config.overlap = overlap;
                config.batch = true;
                config.batch_size = 256;
                config.rows_per_message = 8;
                let engine = FederatedEngine::new(lake, config);
                let planned = engine.plan(&ast).unwrap();
                let batched = engine.execute_planned(&planned).unwrap();
                let reference = engine.execute_planned_reference(&planned).unwrap();
                let label =
                    format!("{}/batch/overlap={overlap}/replicas={replicas}", q.id);
                assert!(batched.stats.answers > 0, "{label}: query returned no rows");
                assert_equivalent(&label, &batched, &reference);
                let mut rows = batched.rows.clone();
                rows.sort_by_cached_key(|row| row.to_string());
                let csv = fedlake_core::results::to_sparql_csv(&batched.vars, &rows);
                assert_eq!(csv, golden, "{label}: CSV diverges from {golden_path:?}");
            }
        }
    }
}

#[test]
fn interned_rows_match_reference_motivating_query() {
    let q = workload::motivating();
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q.datasets);
    let ast = parse_query(&q.sparql).unwrap();
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let planned = engine.plan(&ast).unwrap();
            let interned = engine.execute_planned(&planned).unwrap();
            let reference = engine.execute_planned_reference(&planned).unwrap();
            assert_equivalent(
                &format!("motivating/{}", network.name),
                &interned,
                &reference,
            );
        }
    }
}

/// Parity must hold under cost-based planning too: the cost planner may
/// choose a different join order and bind joins, but both executors
/// consume the same `PlannedQuery`, so everything — answers, traffic,
/// counters, simulated timings — must still agree. Additionally, the
/// cost-based plan's answers must equal the heuristic plan's answers
/// (same query, same lake: planning strategy must never change results).
#[test]
fn interned_rows_match_reference_cost_based() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in NetworkProfile::ALL {
            let mut heur_cfg = PlanConfig::new(PlanMode::AWARE, network);
            heur_cfg.cost_based = false;
            let mut cost_cfg = heur_cfg;
            cost_cfg.cost_based = true;
            let heur_engine = FederatedEngine::new(lake.clone(), heur_cfg);
            let engine = FederatedEngine::new(lake.clone(), cost_cfg);
            let planned = engine.plan(&ast).unwrap();
            assert!(planned.report.cost_based, "cost flag must reach the report");
            let interned = engine.execute_planned(&planned).unwrap();
            let reference = engine.execute_planned_reference(&planned).unwrap();
            let label = format!("{}/cost/{}", q.id, network.name);
            assert!(interned.stats.answers > 0, "{label}: query returned no rows");
            assert_equivalent(&label, &interned, &reference);

            let heur = heur_engine.execute_sparql(&q.sparql).unwrap();
            assert_eq!(
                sorted_rows(&heur),
                sorted_rows(&interned),
                "{label}: cost-based answers diverge from heuristic answers"
            );
        }
    }
}
