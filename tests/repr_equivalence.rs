//! Representation-equivalence suite: the interned slot-row engine must
//! return byte-identical answers and identical cost counters to the
//! reference term-row (`BTreeMap`) executor for every workload query,
//! every network profile and both planning modes. The two executors share
//! the wrapper streams and bind-join machinery, so link traffic matches by
//! construction — this suite pins that down and additionally checks the
//! engine-side operator counters that are mirrored by hand.

use fedlake_core::{FaultPlan, FedResult, FederatedEngine, PlanConfig, PlanMode, RetryPolicy};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_sparql::parser::parse_query;

fn sorted_rows(r: &FedResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows.iter().map(|row| row.to_string()).collect();
    v.sort();
    v
}

fn assert_equivalent(label: &str, a: &FedResult, b: &FedResult) {
    assert_eq!(sorted_rows(a), sorted_rows(b), "{label}: answer rows diverge");
    let sa = &a.stats;
    let sb = &b.stats;
    assert_eq!(sa.answers, sb.answers, "{label}: answers");
    assert_eq!(sa.messages, sb.messages, "{label}: messages");
    assert_eq!(sa.rows_transferred, sb.rows_transferred, "{label}: rows_transferred");
    assert_eq!(sa.sql_queries, sb.sql_queries, "{label}: sql_queries");
    assert_eq!(sa.engine_filter_evals, sb.engine_filter_evals, "{label}: engine_filter_evals");
    assert_eq!(sa.engine_join_probes, sb.engine_join_probes, "{label}: engine_join_probes");
    assert_eq!(sa.services, sb.services, "{label}: services");
    assert_eq!(sa.engine_operators, sb.engine_operators, "{label}: engine_operators");
    assert_eq!(sa.merged_services, sb.merged_services, "{label}: merged_services");
    assert_eq!(sa.network_delay, sb.network_delay, "{label}: network_delay");
    assert_eq!(sa.execution_time, sb.execution_time, "{label}: execution_time");
    assert_eq!(sa.plan_label, sb.plan_label, "{label}: plan_label");
    assert_eq!(sa.retries, sb.retries, "{label}: retries");
    assert_eq!(sa.source_failures, sb.source_failures, "{label}: source_failures");
    assert_eq!(sa.degraded, sb.degraded, "{label}: degraded");
}

fn run_suite(mode: PlanMode, mode_name: &str) {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in NetworkProfile::ALL {
            let engine =
                FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let planned = engine.plan(&ast).unwrap();
            let interned = engine.execute_planned(&planned).unwrap();
            let reference = engine.execute_planned_reference(&planned).unwrap();
            let label = format!("{}/{mode_name}/{}", q.id, network.name);
            assert!(interned.stats.answers > 0, "{label}: query returned no rows");
            assert_equivalent(&label, &interned, &reference);
        }
    }
}

#[test]
fn interned_rows_match_reference_unaware() {
    run_suite(PlanMode::Unaware, "unaware");
}

#[test]
fn interned_rows_match_reference_aware() {
    run_suite(PlanMode::AWARE, "aware");
}

/// Parity must also hold with fault injection and retries active: the two
/// executors share the wrapper streams, so they see the same fault
/// decisions, issue the same retries and — when the budget is exhausted —
/// fail with the same error.
#[test]
fn interned_rows_match_reference_with_faults() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let faults = FaultPlan {
        drop_prob: 0.08,
        truncate_prob: 0.05,
        spike_prob: 0.10,
        spike_factor: 8.0,
        outage_after: Some(40),
        outage_len: 2,
    };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let mut config = PlanConfig::new(PlanMode::AWARE, network);
            config.faults = faults;
            config.retry = RetryPolicy { max_attempts: 6, ..Default::default() };
            let engine = FederatedEngine::new(lake.clone(), config);
            let planned = engine.plan(&ast).unwrap();
            let label = format!("{}/faults/{}", q.id, network.name);
            let interned = engine.execute_planned(&planned);
            let reference = engine.execute_planned_reference(&planned);
            match (interned, reference) {
                (Ok(a), Ok(b)) => {
                    assert_equivalent(&label, &a, &b);
                    assert!(
                        a.stats.retries > 0 || a.stats.source_failures.is_empty(),
                        "{label}: faults without retries"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{label}: errors diverge"),
                (a, b) => panic!("{label}: outcomes diverge: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn interned_rows_match_reference_motivating_query() {
    let q = workload::motivating();
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q.datasets);
    let ast = parse_query(&q.sparql).unwrap();
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let planned = engine.plan(&ast).unwrap();
            let interned = engine.execute_planned(&planned).unwrap();
            let reference = engine.execute_planned_reference(&planned).unwrap();
            assert_equivalent(
                &format!("motivating/{}", network.name),
                &interned,
                &reference,
            );
        }
    }
}
