//! Scheduler-equivalence suite: the overlapped (event-driven) schedule
//! must return byte-identical answers, identical link traffic and
//! identical SQL counts to the serialized schedule for every workload
//! query and network profile — only the *timing* may differ, and it may
//! only improve. The reference term-row executor must agree with the
//! interned engine under the overlapped schedule too, so all four
//! (schedule × representation) corners produce the same answer set.

use fedlake_core::{FedResult, FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_sparql::parser::parse_query;

fn sorted_rows(r: &FedResult) -> Vec<String> {
    let mut v: Vec<String> = r.rows.iter().map(|row| row.to_string()).collect();
    v.sort();
    v
}

/// Everything except timing must be schedule-invariant.
fn assert_same_answers(label: &str, ser: &FedResult, ovl: &FedResult) {
    assert_eq!(sorted_rows(ser), sorted_rows(ovl), "{label}: answer rows diverge");
    assert_eq!(ser.stats.answers, ovl.stats.answers, "{label}: answers");
    assert_eq!(
        ser.trace.count(),
        ovl.trace.count(),
        "{label}: trace answer counts"
    );
    assert_eq!(ser.stats.messages, ovl.stats.messages, "{label}: messages");
    assert_eq!(
        ser.stats.rows_transferred, ovl.stats.rows_transferred,
        "{label}: rows_transferred"
    );
    assert_eq!(ser.stats.sql_queries, ovl.stats.sql_queries, "{label}: sql_queries");
    assert_eq!(ser.stats.network_delay, ovl.stats.network_delay, "{label}: network_delay");
    assert_eq!(ser.stats.retries, ovl.stats.retries, "{label}: retries");
    assert_eq!(
        ser.stats.source_failures, ovl.stats.source_failures,
        "{label}: source_failures"
    );
}

#[test]
fn overlapped_schedule_is_answer_identical_and_no_slower() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        for q in workload::experiment_queries() {
            let lake = build_lake_with(&lake_cfg, q.datasets);
            let ast = parse_query(&q.sparql).unwrap();
            for network in NetworkProfile::ALL {
                let ser_cfg = PlanConfig::new(mode, network);
                let mut ovl_cfg = ser_cfg;
                ovl_cfg.overlap = true;
                let ser_engine = FederatedEngine::new(lake.clone(), ser_cfg);
                let planned = ser_engine.plan(&ast).unwrap();
                let ser = ser_engine.execute_planned(&planned).unwrap();
                let ovl_engine = FederatedEngine::new(lake.clone(), ovl_cfg);
                let ovl = ovl_engine.execute_planned(&planned).unwrap();

                let label = format!("{}/{}/{}", q.id, ser.stats.plan_label, network.name);
                assert!(ser.stats.answers > 0, "{label}: query returned no rows");
                assert_same_answers(&label, &ser, &ovl);

                // Overlap can only hide latency, never add it.
                assert!(
                    ovl.stats.execution_time <= ser.stats.execution_time,
                    "{label}: overlapped slower ({:?} > {:?})",
                    ovl.stats.execution_time,
                    ser.stats.execution_time
                );
                let services = planned.plan.service_count();
                if services == 1 {
                    // A single source has nothing to overlap with: the
                    // scheduled chain replays the serialized clock exactly.
                    assert_eq!(
                        ser.stats.execution_time, ovl.stats.execution_time,
                        "{label}: single-service timing must match"
                    );
                    assert_eq!(
                        ser.stats.first_answer, ovl.stats.first_answer,
                        "{label}: single-service first answer must match"
                    );
                } else if network.delay.mean_ms() > 0.0
                    && planned.plan.independent_service_count() > 1
                {
                    // Independent sources with real latency must overlap:
                    // the critical path is strictly shorter than the sum.
                    // (Bind-join right sides are dependent fetches with
                    // nothing to overlap, hence the independent count.)
                    assert!(
                        ovl.stats.execution_time < ser.stats.execution_time,
                        "{label}: {services} services under {} should overlap \
                         ({:?} !< {:?})",
                        network.name,
                        ovl.stats.execution_time,
                        ser.stats.execution_time
                    );
                }
            }
        }
    }
}

/// The overlapped schedule is a deterministic function of the plan and the
/// seed: re-running the same planned query must reproduce the full
/// statistics *and the unsorted answer order* byte-for-byte. This pins the
/// `(time, seq)` re-poll tie-break in UNION and the hash joins — under
/// NO_DELAY especially, many source events share a completion time, and
/// any order left to an unstable tie-break would shuffle answers between
/// runs.
#[test]
fn overlapped_schedule_is_deterministic_across_reruns() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA1] {
            let mut cfg = PlanConfig::new(PlanMode::AWARE, network);
            cfg.overlap = true;
            let engine = FederatedEngine::new(lake.clone(), cfg);
            let planned = engine.plan(&ast).unwrap();
            let first = engine.execute_planned(&planned).unwrap();
            let unsorted: Vec<String> =
                first.rows.iter().map(|row| row.to_string()).collect();
            for run in 0..3 {
                let again = engine.execute_planned(&planned).unwrap();
                let label = format!("{}/rerun {run}/{}", q.id, network.name);
                assert_eq!(again.stats, first.stats, "{label}: stats diverge");
                assert_eq!(
                    again.rows.iter().map(|r| r.to_string()).collect::<Vec<_>>(),
                    unsorted,
                    "{label}: answer order diverges"
                );
            }
        }
    }
}

/// The vectorized driver keeps the two schedules equivalent — and keeps
/// the *clock* of each schedule identical to its row-at-a-time twin. With
/// batching on and multi-row message chunks: the serialized batch run
/// reproduces the serialized row run's execution time exactly (batch
/// charges are sums of the same per-row charges, applied in the same
/// per-link order), the overlapped batch run reproduces the overlapped
/// row run's (launch times are decided by the same ready-queue-empty
/// polls), and the overlapped batch run is never slower than serialized.
#[test]
fn batched_schedules_stay_equivalent_and_keep_row_mode_timing() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA1] {
            let run = |overlap: bool, batch: bool| {
                let mut cfg = PlanConfig::new(PlanMode::AWARE, network);
                cfg.overlap = overlap;
                cfg.batch = batch;
                cfg.batch_size = 256;
                cfg.rows_per_message = 8;
                let engine = FederatedEngine::new(lake.clone(), cfg);
                let planned = engine.plan(&ast).unwrap();
                engine.execute_planned(&planned).unwrap()
            };
            let row_ser = run(false, false);
            let bat_ser = run(false, true);
            let row_ovl = run(true, false);
            let bat_ovl = run(true, true);
            let label = format!("{}/batched/{}", q.id, network.name);
            assert!(bat_ser.stats.answers > 0, "{label}: query returned no rows");

            assert_same_answers(&format!("{label}/ser-vs-row"), &row_ser, &bat_ser);
            assert_eq!(
                bat_ser.stats.execution_time, row_ser.stats.execution_time,
                "{label}: serialized batch clock diverges from row mode"
            );
            assert_same_answers(&format!("{label}/ovl-vs-row"), &row_ovl, &bat_ovl);
            assert_eq!(
                bat_ovl.stats.execution_time, row_ovl.stats.execution_time,
                "{label}: overlapped batch clock diverges from row mode"
            );
            assert_same_answers(&format!("{label}/ser-vs-ovl"), &bat_ser, &bat_ovl);
            assert!(
                bat_ovl.stats.execution_time <= bat_ser.stats.execution_time,
                "{label}: overlapped batch slower ({:?} > {:?})",
                bat_ovl.stats.execution_time,
                bat_ser.stats.execution_time
            );
        }
    }
}

/// The reference executor runs the same overlapped schedule through
/// term-row operators: answers and traffic must match the interned engine
/// corner-for-corner.
#[test]
fn reference_executor_agrees_under_overlap() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = parse_query(&q.sparql).unwrap();
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let mut cfg = PlanConfig::new(PlanMode::AWARE, network);
            cfg.overlap = true;
            let engine = FederatedEngine::new(lake.clone(), cfg);
            let planned = engine.plan(&ast).unwrap();
            let interned = engine.execute_planned(&planned).unwrap();
            let reference = engine.execute_planned_reference(&planned).unwrap();
            let label = format!("{}/overlap-ref/{}", q.id, network.name);
            assert_eq!(
                sorted_rows(&interned),
                sorted_rows(&reference),
                "{label}: answer rows diverge"
            );
            assert_eq!(
                interned.stats.execution_time, reference.stats.execution_time,
                "{label}: execution_time"
            );
            assert_eq!(
                interned.stats.first_answer, reference.stats.first_answer,
                "{label}: first_answer"
            );
            assert_eq!(interned.stats.messages, reference.stats.messages, "{label}: messages");
            assert_eq!(
                interned.stats.network_delay, reference.stats.network_delay,
                "{label}: network_delay"
            );
            assert_eq!(
                interned.stats.sql_queries, reference.stats.sql_queries,
                "{label}: sql_queries"
            );
        }
    }
}
