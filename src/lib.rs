//! # FedLake
//!
//! Physical-design-aware federated query processing over a Semantic Data
//! Lake — a from-scratch Rust reproduction of
//! *Optimizing Federated Queries Based on the Physical Design of a Data
//! Lake* (Rohde & Vidal, EDBT 2020 workshops / SEAData 2020).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`rdf`] — RDF data model and indexed triple store.
//! * [`sparql`] — SPARQL subset: parser, algebra, local evaluation.
//! * [`relational`] — embedded relational engine (the MySQL stand-in).
//! * [`netsim`] — network simulation: gamma-distributed per-message delays
//!   over a virtual or real clock, plus the engine cost model.
//! * [`mapping`] — table↔RDF mappings, source descriptions, RDF Molecule
//!   Templates.
//! * [`core`] — the federated engine: decomposition into star-shaped
//!   sub-queries, source selection, plan generation with the paper's two
//!   physical-design heuristics, adaptive operators, wrappers, answer
//!   traces.
//! * [`datagen`] — the synthetic LSLOD-like life-science data lake.
//! * [`serve`] — concurrent multi-query serving: seeded client
//!   workloads, admission control, shared-link contention, latency and
//!   fairness reporting.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and
//! the experiment index.

pub use fedlake_core as core;
pub use fedlake_datagen as datagen;
pub use fedlake_mapping as mapping;
pub use fedlake_netsim as netsim;
pub use fedlake_rdf as rdf;
pub use fedlake_relational as relational;
pub use fedlake_serve as serve;
pub use fedlake_sparql as sparql;
